package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"semjoin/internal/bin"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
	"semjoin/internal/wal"
)

// WAL record type tags for the three IncExt update streams.
const (
	// RecGraphUpdate logs an ApplyGraphUpdate ΔG batch.
	RecGraphUpdate byte = 1
	// RecRelationUpdate logs an ApplyRelationUpdate ΔD relation swap.
	RecRelationUpdate byte = 2
	// RecKeywordUpdate logs an UpdateKeywords interest-set change.
	RecKeywordUpdate byte = 3
)

// EncodeGraphUpdate serialises a ΔG batch into a WAL record payload.
func EncodeGraphUpdate(delta graph.Batch) ([]byte, error) {
	var buf bytes.Buffer
	if err := delta.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGraphUpdate parses a RecGraphUpdate payload.
func DecodeGraphUpdate(p []byte) (graph.Batch, error) {
	return graph.LoadBatch(bytes.NewReader(p))
}

// EncodeRelationUpdate serialises a ΔD replacement relation into a WAL
// record payload.
func EncodeRelationUpdate(d *rel.Relation) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil relation update")
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRelationUpdate parses a RecRelationUpdate payload.
func DecodeRelationUpdate(p []byte) (*rel.Relation, error) {
	return rel.LoadRelation(bytes.NewReader(p))
}

// EncodeKeywordUpdate serialises a keyword set into a WAL record
// payload.
func EncodeKeywordUpdate(keywords []string) ([]byte, error) {
	var buf bytes.Buffer
	w := bin.NewWriter(&buf)
	w.Strings(keywords)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeKeywordUpdate parses a RecKeywordUpdate payload.
func DecodeKeywordUpdate(p []byte) ([]string, error) {
	r := bin.NewReader(bytes.NewReader(p))
	kws := r.Strings()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return kws, nil
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Policy, SegmentBytes and BatchEvery pass through to the WAL.
	Policy       wal.SyncPolicy
	SegmentBytes int64
	BatchEvery   int
	// CheckpointEvery takes an automatic compacted snapshot after this
	// many logged updates (0 = checkpoint only on demand). Checkpoint
	// failures never fail the update that triggered them — the update
	// is already durable in the log — but are counted and retrievable
	// via LastCheckpointError.
	CheckpointEvery int
	// Strict passes through to the WAL: fail recovery on structural
	// corruption instead of truncating.
	Strict bool
	// Reg receives wal/snapshot metrics (nil-safe).
	Reg *obs.Registry
	// FS overrides the filesystem for both the WAL and snapshots.
	FS wal.FS
}

// DurableBoot supplies what a DurableStore cannot read from disk: the
// non-serialisable matcher and models, the extraction config, and —
// for a directory with no snapshot yet — the initial in-memory state
// to adopt.
type DurableBoot struct {
	// Base is adopted as the store's state when dir holds no snapshot.
	// Required for a fresh directory; ignored when a snapshot exists.
	Base *BaseMaterialization
	// Graph is the graph Base extracts over (required with Base).
	Graph *graph.Graph
	// Models and Cfg rebuild extractors when loading a snapshot.
	Models Models
	Cfg    Config
	// Matcher drives HER during replay and future updates. Defaults to
	// Base.Spec.Matcher when nil.
	Matcher her.Matcher
}

// DurableStore is a BaseMaterialization with write-ahead-logged update
// streams and compacted snapshots: every ApplyGraphUpdate /
// ApplyRelationUpdate / UpdateKeywords is logged (and fsynced per
// policy) BEFORE it is applied in memory, so an acknowledged update
// survives a crash; recovery loads the latest snapshot and replays the
// log suffix. Each store is a self-contained durability domain: its
// snapshot includes its own copy of the graph, so recovery never
// depends on (or repairs) state shared with other bases.
//
// Reads and updates are coordinated by an RWMutex: View (or
// RLock/RUnlock) for query execution, exclusive internally for the
// update streams.
type DurableStore struct {
	mu   sync.RWMutex
	dir  string
	fs   wal.FS
	log  *wal.Log
	base *BaseMaterialization
	g    *graph.Graph

	models  Models
	cfg     Config
	matcher her.Matcher
	opts    DurableOptions

	snapSeq         uint64 // seq covered by the newest snapshot
	sinceCheckpoint int
	replaySkipped   int // replayed records whose apply failed (deterministic no-ops)
	checkpointErr   error

	snapSec   *obs.Histogram
	snapTotal *obs.Counter
	replayed  *obs.Counter
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".bin"
	snapTmp    = ".tmp"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// OpenDurable opens (creating if needed) the durable store in dir.
// With a snapshot on disk, the snapshot state is loaded and the WAL
// suffix replayed — boot.Base is ignored. With a fresh directory, the
// store adopts boot.Base/boot.Graph and starts logging. When ctx
// carries an obs trace, recovery reports a span tree
// (durable_recover → snapshot_load / wal_open / wal_replay).
func OpenDurable(ctx context.Context, dir string, boot DurableBoot, opts DurableOptions) (*DurableStore, error) {
	fs := opts.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("core: durable dir: %w", err)
	}
	s := &DurableStore{
		dir: dir, fs: fs,
		models: boot.Models, cfg: boot.Cfg, matcher: boot.Matcher, opts: opts,
		snapSec:   opts.Reg.Histogram("snapshot_seconds", nil),
		snapTotal: opts.Reg.Counter("durable_snapshots_total"),
		replayed:  opts.Reg.Counter("durable_replay_records_total"),
	}
	tr := obs.TraceFromContext(ctx)
	root := tr.StartSpan("durable_recover")
	defer root.End()

	// 1. Latest snapshot, if any.
	snapSpan := root.StartChild("snapshot_load")
	seq, err := s.loadLatestSnapshot()
	snapSpan.End()
	if err != nil {
		return nil, err
	}
	if s.base == nil {
		if boot.Base == nil || boot.Graph == nil {
			return nil, fmt.Errorf("core: durable dir %s has no snapshot and no boot state was supplied", dir)
		}
		s.base = boot.Base
		s.g = boot.Graph
	}
	if s.matcher == nil {
		s.matcher = s.base.Spec.Matcher
	}
	if s.matcher == nil {
		return nil, fmt.Errorf("core: durable store needs a matcher (boot.Matcher or Base.Spec.Matcher)")
	}
	s.base.Spec.Matcher = s.matcher
	s.snapSeq = seq

	// 2. WAL recovery.
	walSpan := root.StartChild("wal_open")
	l, err := wal.Open(dir, wal.Options{
		Policy: opts.Policy, SegmentBytes: opts.SegmentBytes,
		BatchEvery: opts.BatchEvery, Strict: opts.Strict,
		Reg: opts.Reg, FS: fs,
	})
	walSpan.End()
	if err != nil {
		return nil, err
	}
	s.log = l

	// 3. Replay the suffix past the snapshot.
	replaySpan := root.StartChild("wal_replay")
	err = s.replay(ctx, seq)
	replaySpan.End()
	if err != nil {
		l.Close()
		return nil, err
	}
	obs.LoggerFromContext(ctx).Info("durable store opened",
		"dir", dir, "snapshot_seq", seq, "wal_records", len(l.Records()),
		"replay_skipped", s.replaySkipped, "truncated", l.Info().Truncated)
	return s, nil
}

// loadLatestSnapshot restores the newest readable snapshot, returning
// the seq it covers (0 when none exists).
func (s *DurableStore) loadLatestSnapshot() (uint64, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("core: list durable dir: %w", err)
	}
	var snaps []string
	for _, n := range names {
		if strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) == 0 {
		return 0, nil
	}
	sort.Strings(snaps) // hex names sort by seq
	name := snaps[len(snaps)-1]
	data, err := s.fs.ReadFile(s.dir + "/" + name)
	if err != nil {
		return 0, fmt.Errorf("core: read snapshot %s: %w", name, err)
	}
	// Verify the whole-file CRC trailer before decoding: a bit flip in
	// a string payload would otherwise decode "successfully" as
	// different data.
	if len(data) < 4 {
		return 0, fmt.Errorf("core: snapshot %s: too short for checksum", name)
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return 0, fmt.Errorf("core: snapshot %s: checksum mismatch (%08x != %08x)", name, got, want)
	}
	seq, err := s.decodeSnapshot(body)
	if err != nil {
		return 0, fmt.Errorf("core: snapshot %s: %w", name, err)
	}
	return seq, nil
}

// encodeSnapshot serialises the full store state: the covered seq, the
// graph (exact structural fidelity), the current reference relation D,
// the base materialisation (AR, build-time f(D,G), current h(D,G),
// scheme), the CURRENT match state (which drifts from the build-time
// match relation under updates), and the refined pattern clusters
// (which UpdateKeywords re-ranks and which no other codec persists).
func (s *DurableStore) encodeSnapshot(buf *bytes.Buffer, seq uint64) error {
	ex := s.base.Extractor
	if ex == nil || ex.s == nil || ex.scheme == nil || ex.result == nil {
		return fmt.Errorf("core: snapshot requires a completed RExt run")
	}
	w := bin.NewWriter(buf)
	w.Header("snapshot", 1)
	w.U64(seq)
	if err := w.Err(); err != nil {
		return err
	}
	if err := s.g.Save(buf); err != nil {
		return err
	}
	if err := ex.s.Save(buf); err != nil {
		return err
	}
	if err := SaveBase(buf, s.base); err != nil {
		return err
	}
	if err := matchRelation(ex.s, ex.matches).Save(buf); err != nil {
		return err
	}
	w.Int(ex.totalPaths)
	w.Int(len(ex.clusters))
	for _, sc := range ex.clusters {
		keys := make([]string, 0, len(sc.patterns))
		for k := range sc.patterns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Int(len(keys))
		for _, k := range keys {
			w.String(k)
			w.Int(sc.patterns[k])
		}
		w.Int(len(sc.w))
		for _, we := range sc.w {
			w.I64(int64(we.vertex))
			w.Int(we.tupleIdx)
			w.String(we.endLabel)
		}
	}
	return w.Err()
}

// decodeSnapshot rebuilds store state from an encodeSnapshot image.
func (s *DurableStore) decodeSnapshot(data []byte) (uint64, error) {
	in := bytes.NewReader(data)
	r := bin.NewReader(in)
	if v := r.Header("snapshot"); r.Err() == nil && v != 1 {
		return 0, fmt.Errorf("unsupported snapshot version %d", v)
	}
	seq := r.U64()
	if err := r.Err(); err != nil {
		return 0, err
	}
	g, err := graph.Load(in)
	if err != nil {
		return 0, fmt.Errorf("graph section: %w", err)
	}
	d, err := rel.LoadRelation(in)
	if err != nil {
		return 0, fmt.Errorf("relation section: %w", err)
	}
	base, err := LoadBase(in, d, g, s.models, s.matcher, s.cfg)
	if err != nil {
		return 0, fmt.Errorf("base section: %w", err)
	}
	curMatches, err := rel.LoadRelation(in)
	if err != nil {
		return 0, fmt.Errorf("match section: %w", err)
	}
	ex := base.Extractor
	matches := matchesFromRelation(d, curMatches)
	ex.matches = matches
	ex.vertexTuple = make(map[graph.VertexID]int, len(matches))
	for _, m := range matches {
		if _, ok := ex.vertexTuple[m.Vertex]; !ok {
			ex.vertexTuple[m.Vertex] = m.TupleIdx
		}
	}
	ex.totalPaths = r.Int()
	nc := r.Len()
	clusters := make([]*scoredCluster, 0, min(nc, 1<<20))
	for i := 0; i < nc && r.Err() == nil; i++ {
		sc := &scoredCluster{patterns: map[string]int{}}
		np := r.Len()
		for j := 0; j < np && r.Err() == nil; j++ {
			k := r.String()
			sc.patterns[k] = r.Int()
		}
		nw := r.Len()
		for j := 0; j < nw && r.Err() == nil; j++ {
			we := wEntry{
				vertex:   graph.VertexID(r.I64()),
				tupleIdx: r.Int(),
				endLabel: r.String(),
			}
			we.endVec = ex.valueVec(we.endLabel)
			sc.w = append(sc.w, we)
		}
		clusters = append(clusters, sc)
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	ex.clusters = clusters
	s.base = base
	s.g = g
	return seq, nil
}

// replay re-applies every WAL record past snapSeq to the in-memory
// state. A record whose apply fails is skipped: the live run returned
// that same (deterministic) error to its caller without changing
// state, so skipping reproduces the pre-crash state exactly.
func (s *DurableStore) replay(ctx context.Context, snapSeq uint64) error {
	expected := snapSeq + 1
	for _, rec := range s.log.Records() {
		if rec.Seq <= snapSeq {
			continue
		}
		if rec.Seq != expected {
			return fmt.Errorf("core: replay gap: snapshot covers seq %d but next log record is %d", snapSeq, rec.Seq)
		}
		expected++
		if err := s.applyRecord(ctx, rec); err != nil {
			s.replaySkipped++
		}
		s.replayed.Inc()
	}
	return nil
}

// applyRecord decodes and applies one logged update. Decode failures
// are impossible for records the store wrote (CRC-verified), so they
// surface as skip-with-count like apply failures do.
func (s *DurableStore) applyRecord(ctx context.Context, rec wal.Record) error {
	switch rec.Type {
	case RecGraphUpdate:
		delta, err := DecodeGraphUpdate(rec.Payload)
		if err != nil {
			return err
		}
		_, err = s.base.Extractor.ApplyGraphUpdateContext(ctx, delta, s.matcher)
		return err
	case RecRelationUpdate:
		d, err := DecodeRelationUpdate(rec.Payload)
		if err != nil {
			return err
		}
		_, err = s.base.Extractor.ApplyRelationUpdateContext(ctx, d, s.matcher)
		if err == nil {
			s.base.Spec.D = d
		}
		return err
	case RecKeywordUpdate:
		kws, err := DecodeKeywordUpdate(rec.Payload)
		if err != nil {
			return err
		}
		out, err := s.base.Extractor.UpdateKeywordsContext(ctx, kws)
		if err == nil {
			s.base.Extracted = out
		}
		return err
	}
	return fmt.Errorf("core: unknown WAL record type %d", rec.Type)
}

// ApplyGraphUpdate logs then applies a ΔG batch.
func (s *DurableStore) ApplyGraphUpdate(delta graph.Batch) (IncStats, error) {
	return s.ApplyGraphUpdateContext(context.Background(), delta)
}

// ApplyGraphUpdateContext logs the batch (fsync per policy), then
// applies it via IncExt. A logging failure returns before any state
// changes; an apply failure leaves the record in the log, where replay
// reproduces the same deterministic no-op.
func (s *DurableStore) ApplyGraphUpdateContext(ctx context.Context, delta graph.Batch) (IncStats, error) {
	payload, err := EncodeGraphUpdate(delta)
	if err != nil {
		return IncStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.log.Append(RecGraphUpdate, payload); err != nil {
		return IncStats{}, err
	}
	st, err := s.base.Extractor.ApplyGraphUpdateContext(ctx, delta, s.matcher)
	s.afterUpdateLocked(ctx)
	return st, err
}

// ApplyRelationUpdate logs then applies a ΔD relation replacement.
func (s *DurableStore) ApplyRelationUpdate(d *rel.Relation) (IncStats, error) {
	return s.ApplyRelationUpdateContext(context.Background(), d)
}

// ApplyRelationUpdateContext is ApplyRelationUpdate with tracing.
func (s *DurableStore) ApplyRelationUpdateContext(ctx context.Context, d *rel.Relation) (IncStats, error) {
	payload, err := EncodeRelationUpdate(d)
	if err != nil {
		return IncStats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.log.Append(RecRelationUpdate, payload); err != nil {
		return IncStats{}, err
	}
	st, err := s.base.Extractor.ApplyRelationUpdateContext(ctx, d, s.matcher)
	if err == nil {
		s.base.Spec.D = d
	}
	s.afterUpdateLocked(ctx)
	return st, err
}

// UpdateKeywords logs then applies an interest-set change.
func (s *DurableStore) UpdateKeywords(keywords []string) (*rel.Relation, error) {
	return s.UpdateKeywordsContext(context.Background(), keywords)
}

// UpdateKeywordsContext is UpdateKeywords with tracing.
func (s *DurableStore) UpdateKeywordsContext(ctx context.Context, keywords []string) (*rel.Relation, error) {
	payload, err := EncodeKeywordUpdate(keywords)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.log.Append(RecKeywordUpdate, payload); err != nil {
		return nil, err
	}
	out, err := s.base.Extractor.UpdateKeywordsContext(ctx, keywords)
	if err == nil {
		// The extractor swapped in a fresh result relation; keep the
		// materialisation's view in step.
		s.base.Extracted = out
	}
	s.afterUpdateLocked(ctx)
	return out, err
}

// afterUpdateLocked handles auto-checkpointing. Held under s.mu.
func (s *DurableStore) afterUpdateLocked(ctx context.Context) {
	s.sinceCheckpoint++
	if s.opts.CheckpointEvery <= 0 || s.sinceCheckpoint < s.opts.CheckpointEvery {
		return
	}
	if err := s.checkpointLocked(ctx); err != nil {
		// The triggering update is already durable in the WAL; a failed
		// snapshot only delays compaction.
		s.checkpointErr = err
		s.opts.Reg.Counter("durable_checkpoint_errors_total").Inc()
		obs.LoggerFromContext(ctx).Warn("auto-checkpoint failed", "dir", s.dir, "err", err.Error())
	}
}

// Checkpoint writes a compacted snapshot of the current state and
// truncates the log prefix it covers.
func (s *DurableStore) Checkpoint(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked(ctx)
}

func (s *DurableStore) checkpointLocked(ctx context.Context) error {
	start := time.Now()
	// Rotate first: after the snapshot lands, every segment before the
	// fresh one is covered and removable.
	if err := s.log.Rotate(); err != nil {
		return err
	}
	seq := s.log.LastSeq()
	var buf bytes.Buffer
	if err := s.encodeSnapshot(&buf, seq); err != nil {
		return fmt.Errorf("core: encode snapshot: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	tmp := s.dir + "/" + snapName(seq) + snapTmp
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create snapshot: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("core: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close snapshot: %w", err)
	}
	if err := s.fs.Rename(tmp, s.dir+"/"+snapName(seq)); err != nil {
		return fmt.Errorf("core: publish snapshot: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("core: sync durable dir: %w", err)
	}
	// The snapshot is durable; compact the log and drop older snapshots.
	if err := s.log.TruncateBefore(seq + 1); err != nil {
		return err
	}
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		oldSnap := strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) && n < snapName(seq)
		staleTmp := strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapTmp)
		if oldSnap || staleTmp {
			if err := s.fs.Remove(s.dir + "/" + n); err != nil {
				return err
			}
		}
	}
	s.snapSeq = seq
	s.sinceCheckpoint = 0
	s.checkpointErr = nil
	elapsed := time.Since(start)
	s.snapSec.Observe(elapsed.Seconds())
	s.snapTotal.Inc()
	obs.TraceFromContext(ctx).Phase("durable_checkpoint", start)
	obs.LoggerFromContext(ctx).Info("checkpoint", "dir", s.dir, "seq", seq,
		"bytes", buf.Len(), "duration_ms", float64(elapsed)/float64(time.Millisecond))
	return nil
}

// View runs fn under the store's read lock; queries over the base use
// it so update streams cannot mutate extractor state mid-scan.
func (s *DurableStore) View(fn func(b *BaseMaterialization) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.base)
}

// RLock acquires the store's read lock for callers whose read spans
// multiple calls (the server holds it across query execution).
func (s *DurableStore) RLock() { s.mu.RLock() } //lint:allow lockorder lock-ownership transfer: the paired RUnlock is the caller's obligation

// RUnlock releases RLock.
func (s *DurableStore) RUnlock() { s.mu.RUnlock() }

// Base returns the wrapped materialisation. Callers must hold the
// read lock (View/RLock) when updates may run concurrently.
func (s *DurableStore) Base() *BaseMaterialization { return s.base }

// Graph returns the store's graph (same locking caveat as Base).
func (s *DurableStore) Graph() *graph.Graph { return s.g }

// Matcher returns the HER matcher updates and replay run with.
func (s *DurableStore) Matcher() her.Matcher { return s.matcher }

// Dir returns the durable directory.
func (s *DurableStore) Dir() string { return s.dir }

// LastSeq returns the seq of the last logged update.
func (s *DurableStore) LastSeq() uint64 { return s.log.LastSeq() }

// SnapshotSeq returns the seq covered by the newest snapshot.
func (s *DurableStore) SnapshotSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snapSeq
}

// WALInfo returns the recovery details from Open.
func (s *DurableStore) WALInfo() wal.RecoveryInfo { return s.log.Info() }

// ReplaySkipped returns how many replayed records were deterministic
// no-ops (their apply failed exactly as it did live).
func (s *DurableStore) ReplaySkipped() int { return s.replaySkipped }

// LastCheckpointError returns the most recent auto-checkpoint failure,
// nil once a checkpoint succeeds.
func (s *DurableStore) LastCheckpointError() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkpointErr
}

// Close syncs and closes the log. The store must not be used after.
func (s *DurableStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}

// DurableSet is the catalog-level registry of open durable stores,
// keyed by base name. The gSQL OPEN/CHECKPOINT statements and the
// server's ingestion op resolve stores through it.
type DurableSet struct {
	mu     sync.RWMutex
	stores map[string]*DurableStore
}

// NewDurableSet returns an empty set.
func NewDurableSet() *DurableSet {
	return &DurableSet{stores: map[string]*DurableStore{}}
}

// Put registers a store under name, failing if one is already open.
func (ds *DurableSet) Put(name string, s *DurableStore) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if _, ok := ds.stores[name]; ok {
		return fmt.Errorf("core: durable store %q already open", name)
	}
	ds.stores[name] = s
	return nil
}

// Get returns the store for name, or nil.
func (ds *DurableSet) Get(name string) *DurableStore {
	if ds == nil {
		return nil
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.stores[name]
}

// Names returns the open store names, sorted.
func (ds *DurableSet) Names() []string {
	if ds == nil {
		return nil
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	out := make([]string, 0, len(ds.stores))
	for n := range ds.stores {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RLockAll takes every store's read lock (in sorted name order, so
// lock acquisition is totally ordered against other RLockAll callers
// and against per-store writers) and returns the release function.
// Query execution paths wrap themselves in it so updates streaming
// into any durable base cannot race an in-flight scan.
//
//lint:allow lockorder lock-ownership transfer: every st.mu.RLock is released by the returned closure, in reverse order
func (ds *DurableSet) RLockAll() func() {
	if ds == nil {
		return func() {}
	}
	ds.mu.RLock()
	names := make([]string, 0, len(ds.stores))
	for n := range ds.stores {
		names = append(names, n)
	}
	sort.Strings(names)
	locked := make([]*DurableStore, 0, len(names))
	for _, n := range names {
		st := ds.stores[n]
		st.mu.RLock()
		locked = append(locked, st)
	}
	ds.mu.RUnlock()
	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.RUnlock()
		}
	}
}

// Checkpoint checkpoints one named store, or every open store when
// name is empty.
func (ds *DurableSet) Checkpoint(ctx context.Context, name string) error {
	if name != "" {
		st := ds.Get(name)
		if st == nil {
			return fmt.Errorf("core: no durable store %q", name)
		}
		return st.Checkpoint(ctx)
	}
	for _, n := range ds.Names() {
		if st := ds.Get(n); st != nil {
			if err := st.Checkpoint(ctx); err != nil {
				return fmt.Errorf("core: checkpoint %s: %w", n, err)
			}
		}
	}
	return nil
}

// Close closes every store, keeping the first error.
func (ds *DurableSet) Close() error {
	if ds == nil {
		return nil
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var first error
	for n, st := range ds.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
		delete(ds.stores, n)
	}
	return first
}
