// Dense-bitset reachability for link joins. The connectivity predicate
// behind every link-join variant is "is b within k undirected hops of
// a" — previously answered from a map[VertexID]map[VertexID]bool,
// which costs two hash lookups per probe and one map allocation per
// reached vertex. VertexIDs are small dense integers (int32 indexes
// into the vertex table), so each source's reach set packs into a
// []uint64 bit row: the BFS marks bits instead of inserting map keys,
// the m1 × m2 connectivity probe becomes a shift-and-mask, and the
// reach-size histogram comes from a popcount sweep.
package core

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
)

// reachIndex answers k-hop connectivity for a set of source vertices:
// one bit row per distinct live source, bit v set iff v is within k
// hops (sources reach themselves, matching KHopNeighborhood's
// seed-inclusive contract).
type reachIndex struct {
	rows map[graph.VertexID][]uint64
}

// connected reports whether b is within k hops of source a. Unknown
// sources (not matched, or dead at BFS time) are connected to nothing.
func (r *reachIndex) connected(a, b graph.VertexID) bool {
	row, ok := r.rows[a]
	if !ok || b < 0 {
		return false
	}
	w := int(b) >> 6
	return w < len(row) && row[w]&(1<<(uint(b)&63)) != 0
}

// popcount counts the set bits of one reach row — the bitset analogue
// of len(reachSet), feeding the core_bfs_reach_size histogram.
func popcount(row []uint64) int {
	n := 0
	for _, w := range row {
		n += bits.OnesCount64(w)
	}
	return n
}

// bfsScratch is one worker's reusable BFS state: frontier slices and
// the Neighbors half-edge buffer. Only the per-source bit row (which
// outlives the BFS inside the reachIndex) allocates per call.
type bfsScratch struct {
	front, next []graph.VertexID
	he          []graph.HalfEdge
}

// bfsRow computes one source's k-hop reach as a bit row of words
// uint64s, with KHopNeighborhood's exact semantics: the live source is
// included, expansion runs k rounds over undirected neighbors, and
// dead vertices are neither visited nor expanded.
func bfsRow(g *graph.Graph, src graph.VertexID, k, words int, sc *bfsScratch) []uint64 {
	row := make([]uint64, words)
	row[int(src)>>6] |= 1 << (uint(src) & 63)
	front := append(sc.front[:0], src)
	next := sc.next[:0]
	for d := 0; d < k && len(front) > 0; d++ {
		next = next[:0]
		for _, x := range front {
			sc.he = g.Neighbors(sc.he[:0], x)
			for _, e := range sc.he {
				w, bit := int(e.To)>>6, uint64(1)<<(uint(e.To)&63)
				if row[w]&bit == 0 && g.Live(e.To) {
					row[w] |= bit
					next = append(next, e.To)
				}
			}
		}
		front, next = next, front
	}
	sc.front, sc.next = front[:0], next[:0]
	return row
}

// reachSets computes the k-hop bit row per distinct live left vertex
// (equivalent to the paper's bidirectional search, and cheaper when
// one side repeats vertices), fanning the per-vertex BFS out over a
// bounded pool. It reports the number of workers actually used and
// honours ctx cancellation between vertices.
func reachSets(ctx context.Context, g *graph.Graph, m1 []her.Match, k, par int) (*reachIndex, int, error) {
	phaseStart := time.Now()
	defer obs.TraceFromContext(ctx).Phase("bfs_reach", phaseStart)
	var verts []graph.VertexID
	seen := map[graph.VertexID]bool{}
	for _, m := range m1 {
		if !seen[m.Vertex] && g.Live(m.Vertex) {
			seen[m.Vertex] = true
			verts = append(verts, m.Vertex)
		}
	}
	words := (g.MaxVertexID() + 63) / 64
	workers := normPar(par)
	if workers > len(verts) {
		workers = len(verts)
	}
	reg := obs.FromContext(ctx)
	reg.Counter("core_bfs_sources_total").Add(int64(len(verts)))
	frontier := reg.Histogram("core_bfs_reach_size", obs.SizeBuckets)
	idx := &reachIndex{rows: make(map[graph.VertexID][]uint64, len(verts))}
	if workers <= 1 {
		var sc bfsScratch
		for _, v := range verts {
			if err := ctx.Err(); err != nil {
				return nil, 1, err
			}
			row := bfsRow(g, v, k, words, &sc)
			idx.rows[v] = row
			frontier.Observe(float64(popcount(row)))
		}
		return idx, 1, nil
	}
	rows := make([][]uint64, len(verts))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var sc bfsScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= len(verts) || ctx.Err() != nil {
					return
				}
				rows[i] = bfsRow(g, verts[i], k, words, &sc)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, workers, err
	}
	for i, v := range verts {
		idx.rows[v] = rows[i]
		frontier.Observe(float64(popcount(rows[i])))
	}
	return idx, workers, nil
}
