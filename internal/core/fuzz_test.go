package core

import (
	"testing"

	"semjoin/internal/graph"
)

// fuzzGraph decodes a bounded graph from fuzz bytes: two bytes per
// operation, small vertex/label pools, every reference taken modulo
// the live universe so any byte string is a valid program.
func fuzzGraph(data []byte) *graph.Graph {
	const maxVerts, maxOps = 12, 48
	labels := []string{"issues", "invest", "registered_in"}
	types := []string{"product", "company", "person"}
	g := graph.New()
	g.AddVertex("seed 0", types[0])
	g.AddVertex("seed 1", types[1])
	ops := 0
	for i := 0; i+1 < len(data) && ops < maxOps; i, ops = i+2, ops+1 {
		a, b := int(data[i]), int(data[i+1])
		n := g.MaxVertexID()
		switch a % 4 {
		case 0:
			if n < maxVerts {
				g.AddVertex("v", types[b%len(types)])
			}
		case 1:
			g.AddEdge(graph.VertexID(a/4%n), labels[b%len(labels)], graph.VertexID(b%n))
		case 2:
			g.RemoveEdge(graph.VertexID(a/4%n), labels[b%len(labels)], graph.VertexID(b%n))
		default:
			g.RemoveVertex(graph.VertexID(b % n))
		}
	}
	return g
}

// FuzzPatternMatch cross-checks the three traversal primitives RExt and
// the link join build on, over arbitrary small graphs:
//
//   - SimplePaths emits only valid simple paths (start vertex, length
//     in [1,k], no repeated vertices, pattern arity consistent);
//   - the set of simple-path endpoints equals KHopNeighborhood minus
//     the seed — two independent traversals of the same neighbourhood;
//   - WithinKHops (bidirectional BFS) agrees with KHopNeighborhood
//     membership and is symmetric in sign.
func FuzzPatternMatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 1, 4, 2, 1, 1})
	f.Add([]byte("\x01\x05\x01\x0a\x00\x02\x03\x01\x01\x07"))
	f.Add([]byte("graph bytes with mixed ops \xff\x00\x10\x20"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGraph(data)
		k := 1 + len(data)%2
		var live []graph.VertexID
		g.Vertices(func(v graph.Vertex) { live = append(live, v.ID) })

		starts := live
		if len(starts) > 4 {
			starts = starts[:4]
		}
		for _, v := range starts {
			ends := map[graph.VertexID]bool{}
			g.SimplePaths(v, k, func(p graph.Path) {
				if p.Start() != v {
					t.Fatalf("path from %d starts at %d", v, p.Start())
				}
				if len(p.EdgeLabels) < 1 || len(p.EdgeLabels) > k {
					t.Fatalf("path length %d outside [1,%d]", len(p.EdgeLabels), k)
				}
				if len(p.Vertices) != len(p.EdgeLabels)+1 {
					t.Fatalf("path arity mismatch: %d vertices, %d edges", len(p.Vertices), len(p.EdgeLabels))
				}
				seen := map[graph.VertexID]bool{}
				for _, u := range p.Vertices {
					if seen[u] {
						t.Fatalf("path repeats vertex %d: %v", u, p.Vertices)
					}
					seen[u] = true
				}
				if pat := PatternOf(p); len(pat) != len(p.EdgeLabels) {
					t.Fatalf("PatternOf arity %d for %d edges", len(pat), len(p.EdgeLabels))
				}
				ends[p.End()] = true
			})
			nb := g.KHopNeighborhood([]graph.VertexID{v}, k)
			for u := range ends {
				if !nb[u] {
					t.Fatalf("simple-path endpoint %d missing from KHopNeighborhood(%d, %d)", u, v, k)
				}
			}
			for u := range nb {
				if u != v && !ends[u] {
					t.Fatalf("KHopNeighborhood(%d, %d) contains %d but no simple path reaches it", v, k, u)
				}
			}
		}

		pairs := live
		if len(pairs) > 8 {
			pairs = pairs[:8]
		}
		for _, u := range pairs {
			nb := g.KHopNeighborhood([]graph.VertexID{u}, k)
			for _, v := range pairs {
				duv := g.WithinKHops(u, v, k)
				dvu := g.WithinKHops(v, u, k)
				if (duv >= 0) != (dvu >= 0) {
					t.Fatalf("WithinKHops sign asymmetry: d(%d,%d)=%d d(%d,%d)=%d", u, v, duv, v, u, dvu)
				}
				if duv > k {
					t.Fatalf("WithinKHops(%d,%d,%d) = %d exceeds the bound", u, v, k, duv)
				}
				inNb := u == v || nb[v]
				if (duv >= 0) != inNb {
					t.Fatalf("WithinKHops(%d,%d,%d)=%d disagrees with KHopNeighborhood membership %v",
						u, v, k, duv, inNb)
				}
			}
		}
	})
}
