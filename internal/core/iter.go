// Iterator forms of the semantic joins. Enrichment and link joins are
// input-side pipeline breakers: HER matching and match restriction
// need whole relations, so the sources materialise at Open — but the
// joined output streams tuple-at-a-time into the surrounding
// relational plan, and the static enrichment join pipelines end to end
// when its source schema is known at plan time.
package core

import (
	"context"
	"fmt"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// StaticEnrichIter is the pipelined form of StaticEnrich: the paper's
// three-way reduction S ⋈ f(D,G) ⋈ h(D,G) as a streaming natural-join
// chain over the pre-computed relations, projected to S's attributes
// plus vid plus A. When src's schema is unknown before Open (an opaque
// upstream semantic join) it falls back to materialising src first.
func (m *Materialized) StaticEnrichIter(base string, src rel.Iterator, a []string) (rel.Iterator, error) {
	b := m.bases[base]
	if b == nil {
		return nil, fmt.Errorf("core: no materialisation for base %q", base)
	}
	if !m.WellBehavedKeywords(base, a) {
		return nil, fmt.Errorf("core: keywords %v not covered by AR(%s)=%v", a, base, b.Spec.AR)
	}
	s := src.Schema()
	if s == nil {
		return rel.NewApply("e-join static "+base, []rel.Iterator{src},
			func(ctx context.Context, in []*rel.Relation) (*rel.Relation, string, error) {
				r, err := m.StaticEnrich(base, in[0], a)
				return r, "", err
			}), nil
	}
	// The reduction runs batch-at-a-time: the source converts to column
	// batches (a zero-copy unwrap when it is a scan), both pre-computed
	// relations hash once at Open inside the batch natural joins, match
	// rows gather column-wise, and the projection is a column-header
	// pick. The unbatcher restores the row contract for the plan above,
	// so the signature — and every caller — is unchanged.
	j := rel.NewBatchNaturalJoinRel(rel.NewBatchNaturalJoinRel(rel.ToBatches(src, 0), b.MatchRel), b.Extracted)
	// Project to S's attributes plus vid plus the requested keywords,
	// deduplicating: S may already carry vid or some keyword column from
	// an earlier (chained) enrichment join.
	cols := append([]string(nil), s.AttrNames()...)
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c] = true
	}
	for _, c := range append([]string{"vid"}, a...) {
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
		}
	}
	return rel.NewUnbatcher(rel.NewBatchProject(j, cols...)), nil
}

// StaticLinkIter is the pipelined form of StaticLink: both sides
// materialise at Open (match restriction needs whole relations), the
// joined pairs stream out, and the operator's plan note records
// whether the gL connectivity cache answered the query. The per-vertex
// BFS fan-out runs on par workers (par <= 0 means GOMAXPROCS); the gL
// cache is singleflighted, so concurrent queries sharing cacheKey
// compute the connectivity relation exactly once.
func (m *Materialized) StaticLinkIter(base1 string, s1 rel.Iterator, base2 string, s2 rel.Iterator, k, par int, cacheKey string) rel.Iterator {
	return rel.NewGenerate("l-join static", []rel.Iterator{s1, s2},
		func(ctx context.Context, in []*rel.Relation) (rel.Generated, error) {
			b1, b2 := m.bases[base1], m.bases[base2]
			if b1 == nil || b2 == nil {
				return rel.Generated{}, fmt.Errorf("core: no materialisation for %q/%q", base1, base2)
			}
			r1, r2 := in[0], in[1]
			m1 := restrictMatches(b1, r1)
			m2 := restrictMatches(b2, r2)
			if cacheKey != "" {
				glr, hit, err := m.gl.getOrCompute(ctx, cacheKey, func() (*rel.Relation, error) {
					computeStart := time.Now()
					out, err := glRelation(ctx, m.G, m1, m2, k, par)
					obs.TraceFromContext(ctx).Phase("gl_compute", computeStart)
					return out, err
				})
				if err != nil {
					return rel.Generated{}, err
				}
				pairs := map[[2]graph.VertexID]bool{}
				v1c, v2c := glr.Schema.Col("vid1"), glr.Schema.Col("vid2")
				for _, t := range glr.Tuples {
					pairs[[2]graph.VertexID{
						graph.VertexID(t[v1c].Int()), graph.VertexID(t[v2c].Int()),
					}] = true
				}
				g, err := linkGenerated(r1, r2, m1, m2, func(a, b her.Match) bool {
					return pairs[[2]graph.VertexID{a.Vertex, b.Vertex}]
				})
				if hit {
					g.Note = "gL hit"
				} else {
					g.Note = "gL miss, populated"
					g.Workers = normPar(par)
				}
				return g, err
			}
			reach, workers, err := reachSets(ctx, m.G, m1, k, par)
			if err != nil {
				return rel.Generated{}, err
			}
			g, err := linkGenerated(r1, r2, m1, m2, func(a, b her.Match) bool {
				return reach.connected(a.Vertex, b.Vertex)
			})
			g.Note = "gL bypass"
			g.Workers = workers
			return g, err
		})
}

// LinkJoinIter is the pipelined conceptual-level link join: HER runs
// on the materialised sides at Open, pair connectivity streams out.
// The per-vertex BFS fan-out runs on par workers (par <= 0 means
// GOMAXPROCS).
func LinkJoinIter(g *graph.Graph, matcher her.Matcher, k, par int, s1, s2 rel.Iterator) rel.Iterator {
	return rel.NewGenerate("l-join online", []rel.Iterator{s1, s2},
		func(ctx context.Context, in []*rel.Relation) (rel.Generated, error) {
			matchStart := time.Now()
			m1 := matcher.Match(in[0], g)
			m2 := matcher.Match(in[1], g)
			obs.FromContext(ctx).Histogram("core_her_match_seconds", nil).
				Observe(time.Since(matchStart).Seconds())
			obs.TraceFromContext(ctx).Phase("her_match", matchStart)
			reach, workers, err := reachSets(ctx, g, m1, k, par)
			if err != nil {
				return rel.Generated{}, err
			}
			gen, err := linkGenerated(in[0], in[1], m1, m2, func(a, b her.Match) bool {
				return reach.connected(a.Vertex, b.Vertex)
			})
			gen.Workers = workers
			return gen, err
		})
}

// BaselineEnrichIter wraps the conceptual-level EnrichmentJoin
// (HER+RExt at query time) as an operator. The context flows through
// so the HER/RExt stages attribute their phases to the active trace.
func BaselineEnrichIter(g *graph.Graph, models Models, matcher her.Matcher, keywords []string, cfg Config, src rel.Iterator) rel.Iterator {
	return rel.NewApply("e-join baseline", []rel.Iterator{src},
		func(ctx context.Context, in []*rel.Relation) (*rel.Relation, string, error) {
			out, err := EnrichmentJoinContext(ctx, in[0], g, models, matcher, keywords, cfg)
			return out, "HER+RExt online", err
		})
}

// HeuristicEnrichIter wraps HeuristicJoiner.Enrich; the gτ row type
// chosen at Open becomes the operator's plan note.
func HeuristicEnrichIter(h *HeuristicJoiner, src rel.Iterator, a []string) rel.Iterator {
	return rel.NewApply("e-join heuristic", []rel.Iterator{src},
		func(ctx context.Context, in []*rel.Relation) (*rel.Relation, string, error) {
			out, typ, err := h.Enrich(in[0], a)
			return out, "gτ(" + typ + ")", err
		})
}

// HeuristicLinkIter wraps HeuristicJoiner.Link.
func HeuristicLinkIter(h *HeuristicJoiner, g *graph.Graph, k int, s1, s2 rel.Iterator) rel.Iterator {
	return rel.NewApply("l-join heuristic", []rel.Iterator{s1, s2},
		func(ctx context.Context, in []*rel.Relation) (*rel.Relation, string, error) {
			out, err := h.Link(in[0], in[1], g, k)
			return out, "gτ alignment", err
		})
}

// linkGenerated streams the m1 × m2 pairs passing connected, under the
// qualified two-sided output schema shared by every link-join variant.
func linkGenerated(s1, s2 *rel.Relation, m1, m2 []her.Match, connected func(a, b her.Match) bool) (rel.Generated, error) {
	name2 := s2.Schema.Name
	if name2 == s1.Schema.Name {
		name2 += "2"
	}
	q1 := s1.Schema.Qualified(s1.Schema.Name)
	q2 := s2.Schema.Qualified(name2)
	attrs := append(append([]rel.Attribute(nil), q1.Attrs...), q2.Attrs...)
	schema, err := rel.TrySchema(s1.Schema.Name+"_l_"+name2, "", attrs...)
	if err != nil {
		return rel.Generated{}, err
	}
	i, j := 0, 0
	pull := func() (rel.Tuple, error) {
		for i < len(m1) {
			a := m1[i]
			for j < len(m2) {
				b := m2[j]
				j++
				if !connected(a, b) {
					continue
				}
				t1 := s1.Tuples[a.TupleIdx]
				t2 := s2.Tuples[b.TupleIdx]
				nt := make(rel.Tuple, 0, len(t1)+len(t2))
				return append(append(nt, t1...), t2...), nil
			}
			i++
			j = 0
		}
		return nil, nil
	}
	return rel.Generated{Schema: schema, Pull: pull}, nil
}
