package core

import (
	"bytes"
	"testing"

	"semjoin/internal/mat"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	w := getWorld(t)
	var buf bytes.Buffer
	if err := SaveModels(&buf, w.models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The loaded pair must reproduce embeddings and predictions exactly.
	for _, text := range []string{"Acme Corp", "UK", "company", "country", "unseen token"} {
		a := w.models.Word.Embed(text)
		b := loaded.Word.Embed(text)
		if len(a) != len(b) {
			t.Fatalf("embed dims differ for %q", text)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("embedding differs for %q at %d", text, i)
			}
		}
	}
	e1 := w.models.Seq.EmbedSequence([]string{"issues", "registered_in"})
	e2 := loaded.Seq.EmbedSequence([]string{"issues", "registered_in"})
	if mat.Cosine(e1, e2) < 0.999999 {
		t.Fatal("sequence embeddings differ after reload")
	}
	s1 := w.models.Seq.Start()
	s2 := loaded.Seq.Start()
	s1.Feed("Acme Corp")
	s2.Feed("Acme Corp")
	p1, p2 := s1.Probs(), s2.Probs()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("next-token distributions differ after reload")
		}
	}
}

func TestSaveModelsRejectsNonDefault(t *testing.T) {
	w := getWorld(t)
	var buf bytes.Buffer
	if err := SaveModels(&buf, Models{Seq: w.models.Seq, Word: w.models.Word, RandomPaths: false}); err != nil {
		t.Fatal(err)
	}
	bad := Models{Word: w.models.Word, RandomPaths: true}
	if err := SaveModels(&buf, bad); err == nil {
		t.Fatal("nil sequence model should not persist")
	}
}

func TestSaveLoadSchemeRoundTrip(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	matches := oracle(w).Match(w.products, w.g)
	if err := ex.Discover(w.products, matches); err != nil {
		t.Fatal(err)
	}
	want, err := ex.Extract()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveScheme(&buf, ex.Scheme()); err != nil {
		t.Fatal(err)
	}
	scheme, err := LoadScheme(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(scheme.Clusters) != len(ex.Scheme().Clusters) || scheme.K != ex.Scheme().K {
		t.Fatal("scheme shape changed")
	}
	// Algorithm 1 with the reloaded scheme reproduces the extraction.
	ex2 := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3})
	got, err := ex2.ExtractWithScheme(w.products, scheme, matches)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(got, want) {
		t.Fatal("reloaded scheme extraction differs")
	}
}

func TestSaveLoadBaseRoundTrip(t *testing.T) {
	w := getWorld(t)
	m := buildMaterializedWorld(t, w)
	b := m.Base("product")

	var buf bytes.Buffer
	if err := SaveBase(&buf, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBase(bytes.NewReader(buf.Bytes()), w.products, w.g, w.models,
		oracle(w), Config{H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Extracted.Len() != b.Extracted.Len() || loaded.MatchRel.Len() != b.MatchRel.Len() {
		t.Fatal("relation sizes changed")
	}
	if len(loaded.AR()) != len(b.AR()) {
		t.Fatal("AR changed")
	}
	// The loaded materialisation answers static joins identically.
	m2 := &Materialized{G: w.g, bases: map[string]*BaseMaterialization{"product": loaded},
		gl: newGLCache()}
	got, err := m2.StaticEnrich("product", w.products, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.StaticEnrich("product", w.products, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(got, want) {
		t.Fatal("loaded static join differs")
	}
	// And IncExt still works on the reloaded extractor.
	stats, err := loaded.Extractor.ApplyGraphUpdate(nil, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
}

// TestLoadCorruptData drives every Save/Load pair through a shared
// corruption table: header damage, payload truncation at several
// depths, a wrong-section swap and trailing garbage after a valid
// image. Every loader must return an error — never panic, never
// accept — except for trailing garbage, which stream loaders ignore
// by design (a WAL record or snapshot section may be followed by more
// data).
func TestLoadCorruptData(t *testing.T) {
	w := getWorld(t)

	// One valid image per codec.
	var modelsBuf bytes.Buffer
	if err := SaveModels(&modelsBuf, w.models); err != nil {
		t.Fatal(err)
	}
	ex := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company"}, Seed: 3})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	var schemeBuf bytes.Buffer
	if err := SaveScheme(&schemeBuf, ex.Scheme()); err != nil {
		t.Fatal(err)
	}
	m := buildMaterializedWorld(t, w)
	var baseBuf bytes.Buffer
	if err := SaveBase(&baseBuf, m.Base("product")); err != nil {
		t.Fatal(err)
	}

	codecs := []struct {
		name  string
		valid []byte
		other []byte // a valid image of a DIFFERENT codec
		load  func([]byte) error
	}{
		{"models", modelsBuf.Bytes(), schemeBuf.Bytes(), func(d []byte) error {
			_, err := LoadModels(bytes.NewReader(d))
			return err
		}},
		{"scheme", schemeBuf.Bytes(), baseBuf.Bytes(), func(d []byte) error {
			_, err := LoadScheme(bytes.NewReader(d))
			return err
		}},
		{"base", baseBuf.Bytes(), modelsBuf.Bytes(), func(d []byte) error {
			_, err := LoadBase(bytes.NewReader(d), w.products, w.g, w.models,
				oracle(w), Config{H: 12, Seed: 3})
			return err
		}},
	}

	type mutation struct {
		name    string
		mutate  func(valid, other []byte) []byte
		allowOK bool // trailing garbage past a full image is ignored
	}
	mutations := []mutation{
		{"empty", func(v, o []byte) []byte { return nil }, false},
		{"garbage", func(v, o []byte) []byte { return []byte("garbage data here") }, false},
		{"magic-only", func(v, o []byte) []byte { return v[:4] }, false},
		{"bad-magic", func(v, o []byte) []byte {
			d := append([]byte(nil), v...)
			d[0] ^= 0xff
			return d
		}, false},
		{"header-cut", func(v, o []byte) []byte { return v[:7] }, false},
		{"payload-cut-early", func(v, o []byte) []byte { return v[:len(v)/4] }, false},
		{"payload-cut-half", func(v, o []byte) []byte { return v[:len(v)/2] }, false},
		{"payload-cut-tail", func(v, o []byte) []byte { return v[:len(v)-1] }, false},
		{"wrong-section", func(v, o []byte) []byte { return o }, false},
		{"trailing-garbage", func(v, o []byte) []byte {
			return append(append([]byte(nil), v...), "tail noise"...)
		}, true},
	}

	for _, c := range codecs {
		for _, mu := range mutations {
			t.Run(c.name+"/"+mu.name, func(t *testing.T) {
				data := mu.mutate(c.valid, c.other)
				err := c.load(data)
				if err == nil && !mu.allowOK {
					t.Fatalf("%s accepted %s (%d bytes)", c.name, mu.name, len(data))
				}
				if err != nil && mu.allowOK {
					t.Fatalf("%s rejected %s: %v", c.name, mu.name, err)
				}
			})
		}
	}
}
