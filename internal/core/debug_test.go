package core

import (
	"sort"
	"testing"
)

// TestDebugClusterRanking dumps the refined clusters and their ranking
// terms for the fixture world; enable with -run TestDebugClusterRanking -v.
func TestDebugClusterRanking(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	order := append([]*scoredCluster(nil), ex.clusters...)
	sort.Slice(order, func(i, j int) bool { return order[i].score > order[j].score })
	for _, sc := range order {
		var pats []string
		for k := range sc.patterns {
			pats = append(pats, patternFromKey(k).String())
		}
		sort.Strings(pats)
		ends := map[string]int{}
		for _, w := range sc.w {
			ends[w.endLabel]++
		}
		t.Logf("score=%.3f t1=%.3f t2=%.3f t3=%.3f kw=%q |W|=%d patterns=%v ends=%v",
			sc.score, sc.term1, sc.term2, sc.term3, sc.bestKw, len(sc.w), pats, ends)
	}
	t.Logf("selected: %v", ex.Scheme().Attrs())
}

// TestDebugTypeExtraction dumps the cluster ranking for extraction without
// reference tuples; enable with -v.
func TestDebugTypeExtraction(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	w := getWorld(t)
	te, err := ExtractForType(w.g, w.models, "product", []string{"company", "country"},
		Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range te.Scheme.Clusters {
		var pats []string
		for _, p := range pc.Patterns {
			pats = append(pats, p.String())
		}
		t.Logf("attr=%q patterns=%v", pc.Attr, pats)
	}
	t.Log(te.Relation.String())
}
