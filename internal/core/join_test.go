package core

import (
	"strings"
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

func TestEnrichmentJoinBaseline(t *testing.T) {
	w := getWorld(t)
	out, err := EnrichmentJoin(w.products, w.g, w.models, oracle(w),
		[]string{"company", "country"}, Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != w.products.Len() {
		t.Fatalf("enriched rows = %d, want %d", out.Len(), w.products.Len())
	}
	// Output schema: R's attributes + vid + extracted attributes.
	for _, name := range []string{"pid", "name", "category", "vid", "company", "country"} {
		if !out.Schema.Has(name) {
			t.Fatalf("missing attribute %q in %v", name, out.Schema)
		}
	}
	if acc := accuracy(t, out, "company", w.company); acc < 0.9 {
		t.Fatalf("company accuracy = %.2f", acc)
	}
	if acc := accuracy(t, out, "country", w.country); acc < 0.9 {
		t.Fatalf("country accuracy = %.2f", acc)
	}
}

func TestEnrichmentJoinSelectionThenJoin(t *testing.T) {
	// σpid=fd01 product ⋈ G — the paper's Q1 shape.
	w := getWorld(t)
	sel := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd01"))
	})
	out, err := EnrichmentJoin(sel, w.g, w.models, oracle(w),
		[]string{"company", "country"}, Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1", out.Len())
	}
	if got := out.Get(out.Tuples[0], "company").Str(); got != w.company["fd01"] {
		t.Fatalf("company = %q, want %q", got, w.company["fd01"])
	}
}

func TestEnrichmentJoinNoMatches(t *testing.T) {
	w := getWorld(t)
	empty := rel.NewRelation(w.products.Schema)
	empty.InsertVals(rel.S("nope"), rel.S("missing"), rel.S("Funds"))
	out, err := EnrichmentJoin(empty, w.g, w.models, oracle(w),
		[]string{"company"}, Config{K: 2, H: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("unmatched tuples must not join")
	}
}

func TestEnrichmentJoinUnkeyedSynthesisesRowIDs(t *testing.T) {
	// An unkeyed intermediate result (Example 10's shape) still joins:
	// rows get synthetic ids and the oracle aligns by any matching value.
	w := getWorld(t)
	unkeyed := rel.NewRelation(rel.NewSchema("u", "",
		rel.Attribute{Name: "x"}, rel.Attribute{Name: "pid2"}))
	unkeyed.InsertVals(rel.S("noise"), rel.S("fd01"))
	out, err := EnrichmentJoin(unkeyed, w.g, w.models, oracle(w), []string{"company"},
		Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1", out.Len())
	}
	if got := out.Get(out.Tuples[0], "company").Str(); got != w.company["fd01"] {
		t.Fatalf("company = %q, want %q", got, w.company["fd01"])
	}
}

func TestLinkJoin(t *testing.T) {
	// Products 2 hops from fd00 share its issuer (p1 ←issues─ c ─issues→
	// p2) or its category (p1 ─category→ cat ←category─ p2).
	w := getWorld(t)
	a := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd00"))
	})
	b := rel.Rename(w.products, "product2")
	out, err := LinkJoin(a, b, w.g, oracle(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("expected 2-hop neighbours")
	}
	category0 := w.products.Get(w.products.Tuples[0], "category").Str()
	linked := map[string]bool{}
	for _, tp := range out.Tuples {
		p2 := out.Get(tp, "product2.pid").Str()
		linked[p2] = true
		sameCompany := w.company[p2] == w.company["fd00"]
		sameCategory := out.Get(tp, "product2.category").Str() == category0
		if !sameCompany && !sameCategory {
			t.Fatalf("2-hop link to unrelated product: %s", p2)
		}
	}
	// Every same-company product must be found.
	for pid, c := range w.company {
		if c == w.company["fd00"] && !linked[pid] {
			t.Fatalf("missing co-issued product %s", pid)
		}
	}
	// k=1: no product pairs are adjacent.
	if got, err := LinkJoin(a, b, w.g, oracle(w), 1); err != nil || got.Len() != 1 {
		// Only the self pair (fd00 with itself at distance 0).
		t.Fatalf("k=1 rows = %d, want 1 (self)", got.Len())
	}
}

func TestLinkJoinSelfRenaming(t *testing.T) {
	w := getWorld(t)
	a := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd00"))
	})
	out, err := LinkJoin(a, w.products, w.g, oracle(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same base name on both sides must still produce distinct qualified
	// attribute names.
	seen := map[string]bool{}
	for _, attr := range out.Schema.Attrs {
		if seen[attr.Name] {
			t.Fatalf("duplicate attribute %q", attr.Name)
		}
		seen[attr.Name] = true
	}
}

func buildMaterializedWorld(t *testing.T, w *world) *Materialized {
	t.Helper()
	m, err := BuildMaterialized(w.g, w.models, map[string]BaseSpec{
		"product": {D: w.products, AR: []string{"company", "country"}, Matcher: oracle(w)},
	}, Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticEnrichMatchesBaseline(t *testing.T) {
	w := getWorld(t)
	m := buildMaterializedWorld(t, w)

	static, err := m.StaticEnrich("product", w.products, []string{"company", "country"})
	if err != nil {
		t.Fatal(err)
	}
	if static.Len() != w.products.Len() {
		t.Fatalf("static rows = %d", static.Len())
	}
	if acc := accuracy(t, static, "company", w.company); acc < 0.9 {
		t.Fatalf("static company accuracy = %.2f", acc)
	}
	// Subset of keywords: project only what was asked.
	one, err := m.StaticEnrich("product", w.products, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	if one.Schema.Has("country") {
		t.Fatal("unrequested attribute leaked into result")
	}
	// Selection pushed into the static join.
	sel := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd02"))
	})
	sub, err := m.StaticEnrich("product", sel, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 || sub.Get(sub.Tuples[0], "company").Str() != w.company["fd02"] {
		t.Fatalf("selected static join wrong: %v", sub.Tuples)
	}
}

func TestStaticEnrichRejectsUncoveredKeywords(t *testing.T) {
	w := getWorld(t)
	m := buildMaterializedWorld(t, w)
	if _, err := m.StaticEnrich("product", w.products, []string{"ceo"}); err == nil {
		t.Fatal("keywords outside AR must be rejected (not well-behaved)")
	}
	if m.WellBehavedKeywords("product", []string{"company"}) != true {
		t.Fatal("company ⊆ AR")
	}
	if m.WellBehavedKeywords("nosuch", []string{"company"}) {
		t.Fatal("unknown base cannot be well-behaved")
	}
}

func TestStaticLinkAndGLCache(t *testing.T) {
	w := getWorld(t)
	m := buildMaterializedWorld(t, w)
	a := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd00"))
	})
	b := rel.Rename(w.products, "product2")
	key := LinkCacheKey("product", "pid=fd00", "product", "true", 2)

	first, err := m.StaticLink("product", a, "product", b, 2, key)
	if err != nil {
		t.Fatal(err)
	}
	rels, tuples := m.GLCacheSize()
	if rels != 1 || tuples == 0 {
		t.Fatalf("gL cache not populated: %d rels %d tuples", rels, tuples)
	}
	second, err := m.StaticLink("product", a, "product", b, 2, key)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != second.Len() {
		t.Fatalf("cache hit changed result: %d vs %d", first.Len(), second.Len())
	}
	// Cached result must coincide with the online link join.
	online, err := LinkJoin(a, b, w.g, oracle(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if online.Len() != second.Len() {
		t.Fatalf("gL answer diverges from online: %d vs %d", online.Len(), second.Len())
	}
}

func TestTypeExtractionAndProfile(t *testing.T) {
	w := getWorld(t)
	te, err := ExtractForType(w.g, w.models, "product", []string{"company", "country"},
		Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if te.Relation.Len() != 30 {
		t.Fatalf("gτ rows = %d, want 30", te.Relation.Len())
	}
	if !strings.HasPrefix(te.Relation.Schema.Name, "g_") {
		t.Fatalf("gτ name = %q", te.Relation.Schema.Name)
	}
	// Values should line up with ground truth through the vertex ids.
	vidCol := te.Relation.Schema.Col("vid")
	companyCol := te.Relation.Schema.Col("company")
	if vidCol < 0 || companyCol < 0 {
		t.Fatalf("schema = %v", te.Relation.Schema)
	}
	byVid := map[graph.VertexID]string{}
	for pid, v := range w.truth {
		byVid[v] = w.company[pid]
	}
	hit := 0
	for _, tp := range te.Relation.Tuples {
		if tp[companyCol].Str() == byVid[graph.VertexID(tp[vidCol].Int())] {
			hit++
		}
	}
	if frac := float64(hit) / 30; frac < 0.9 {
		t.Fatalf("type extraction accuracy = %.2f", frac)
	}

	profiles := ProfileGraph(w.g, w.models, map[string][]string{
		"product": {"company", "country"},
		"company": {"country"},
	}, 2, Config{K: 3, H: 12, Seed: 3})
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
}

func TestHeuristicJoin(t *testing.T) {
	w := getWorld(t)
	profiles := ProfileGraph(w.g, w.models, map[string][]string{
		"product": {"company", "country"},
	}, 2, Config{K: 3, H: 12, Seed: 3})
	h := NewHeuristicJoiner(profiles)

	// A non-well-behaved query result: joined attributes from product
	// plus a computed column (no single base tuple id requirement here).
	q, err2 := rel.Project(w.products, "pid", "name", "category")
	if err2 != nil {
		t.Fatal(err2)
	}
	out, typ, err := h.Enrich(q, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	if typ != "product" {
		t.Fatalf("chose type %q", typ)
	}
	if !out.Schema.Has("company") {
		t.Fatalf("no company attribute: %v", out.Schema)
	}
	if acc := accuracy(t, out, "company", w.company); acc < 0.75 {
		t.Fatalf("heuristic accuracy = %.2f", acc)
	}
}

func TestHeuristicJoinNoProfiles(t *testing.T) {
	h := NewHeuristicJoiner(nil)
	w := getWorld(t)
	if _, _, err := h.Enrich(w.products, []string{"company"}); err == nil {
		t.Fatal("expected error without profiles")
	}
}

func TestChooseType(t *testing.T) {
	w := getWorld(t)
	profiles := ProfileGraph(w.g, w.models, map[string][]string{
		"product": {"company", "country"},
		"company": {"country"},
	}, 2, Config{K: 3, H: 12, Seed: 3})
	h := NewHeuristicJoiner(profiles)
	typ, score := h.ChooseType(w.products.Schema, []string{"company"})
	if typ != "product" || score <= 0 {
		t.Fatalf("ChooseType = %q (%d)", typ, score)
	}
}

func TestNormalizeAttr(t *testing.T) {
	if NormalizeAttr("Company_Name") != "companyname" {
		t.Fatal("normalization wrong")
	}
	if NormalizeAttr("T1.loc") != "t1loc" {
		t.Fatal("qualified names keep their letters only")
	}
}

func TestFrequentLabels(t *testing.T) {
	w := getWorld(t)
	fl := FrequentLabels(w.g, 3)
	if len(fl["company"]) == 0 || len(fl["country"]) == 0 {
		t.Fatalf("FrequentLabels missing types: %v", fl)
	}
	if len(fl["company"]) > 3 {
		t.Fatal("topN not respected")
	}
	// "corp" is the most frequent company-label token.
	if fl["company"][0] != "corp" {
		t.Fatalf("company tokens = %v", fl["company"])
	}
	// Edge labels under the "" key.
	found := false
	for _, l := range fl[""] {
		if l == "issues" {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge labels = %v", fl[""])
	}
}

// natJoin3 is the test shorthand for the paper's three-way reduction
// S ⋈ f ⋈ h, failing the test on a join error.
func natJoin3(t *testing.T, s, f, h *rel.Relation) *rel.Relation {
	t.Helper()
	sm, err := rel.NaturalJoin(s, f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rel.NaturalJoin(sm, h)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
