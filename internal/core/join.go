package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// matchRelation materialises HER matches as a relation joinable with S by
// natural join: its first column carries S's key attribute name, its
// second is vid.
func matchRelation(s *rel.Relation, matches []her.Match) *rel.Relation {
	key := s.Schema.Key
	if key == "" {
		key = "tid"
	}
	schema := rel.NewSchema(s.Schema.Name+"_match", key,
		rel.Attribute{Name: key, Type: rel.KindString},
		rel.Attribute{Name: "vid", Type: rel.KindInt},
	)
	r := rel.NewRelation(schema)
	for _, m := range matches {
		r.InsertVals(m.TID, rel.I(int64(m.Vertex)))
	}
	return r
}

// EnrichmentJoin computes the conceptual-level exact enrichment join
// S ⋈_A G of §II-B: HER matches tuples of S to vertices of G, RExt
// extracts the relation h(S,G) for keywords A with path bound cfg.K, and
// the result is the three-way natural join S ⋈ f(S,G) ⋈ h(S,G). This is
// the online baseline of §IV-A that invokes HER and RExt at query time.
func EnrichmentJoin(s *rel.Relation, g *graph.Graph, models Models, matcher her.Matcher, keywords []string, cfg Config) (*rel.Relation, error) {
	return EnrichmentJoinContext(context.Background(), s, g, models, matcher, keywords, cfg)
}

// EnrichmentJoinContext is EnrichmentJoin with phase attribution: when
// ctx carries a trace (obs.ContextWithTrace), the HER matching and
// RExt extraction stages report themselves as "her_match" and
// "rext_extract" phases of that trace.
func EnrichmentJoinContext(ctx context.Context, s *rel.Relation, g *graph.Graph, models Models, matcher her.Matcher, keywords []string, cfg Config) (*rel.Relation, error) {
	if s.Schema.Key == "" {
		// Unkeyed intermediate results (e.g. Example 10's Q′, which joins
		// two base relations) get a synthetic row id so the three-way
		// reduction still works; HER matches are re-keyed accordingly.
		matches := timedMatch(ctx, cfg.Obs, matcher, s, g)
		keyed := withRowIDs(s)
		for i := range matches {
			matches[i].TID = rel.I(int64(matches[i].TupleIdx))
		}
		return enrichMatched(ctx, keyed, g, models, keywords, cfg, matches)
	}
	return enrichMatched(ctx, s, g, models, keywords, cfg, timedMatch(ctx, cfg.Obs, matcher, s, g))
}

// timedMatch runs HER matching, reporting its latency to reg and, when
// ctx carries a trace, as a "her_match" phase.
func timedMatch(ctx context.Context, reg *obs.Registry, matcher her.Matcher, s *rel.Relation, g *graph.Graph) []her.Match {
	start := time.Now()
	matches := matcher.Match(s, g)
	reg.Histogram("core_her_match_seconds", nil).Observe(time.Since(start).Seconds())
	obs.TraceFromContext(ctx).Phase("her_match", start)
	return matches
}

// withRowIDs copies s adding a "_rid" key column holding the row index.
func withRowIDs(s *rel.Relation) *rel.Relation {
	attrs := append([]rel.Attribute{{Name: "_rid", Type: rel.KindInt}}, s.Schema.Attrs...)
	out := rel.NewRelation(rel.NewSchema(s.Schema.Name, "_rid", attrs...))
	for i, t := range s.Tuples {
		nt := make(rel.Tuple, 0, len(t)+1)
		nt = append(nt, rel.I(int64(i)))
		nt = append(nt, t...)
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}

// enrichMatched finishes an enrichment join from pre-computed matches.
func enrichMatched(ctx context.Context, s *rel.Relation, g *graph.Graph, models Models, keywords []string, cfg Config, matches []her.Match) (*rel.Relation, error) {
	cfg.Keywords = keywords
	if len(matches) == 0 {
		empty := rel.NewSchema(s.Schema.Name+"_e", s.Schema.Key,
			append(append([]rel.Attribute(nil), s.Schema.Attrs...),
				rel.Attribute{Name: "vid", Type: rel.KindInt})...)
		return rel.NewRelation(empty), nil
	}
	ex := NewExtractor(g, models, cfg)
	extractStart := time.Now()
	dg, err := ex.Run(s, matches)
	obs.TraceFromContext(ctx).Phase("rext_extract", extractStart)
	if err != nil {
		return nil, err
	}
	m := matchRelation(s, matches)
	sm, err := rel.NaturalJoin(s, m)
	if err != nil {
		return nil, err
	}
	return rel.NaturalJoin(sm, dg)
}

// LinkJoin computes the exact link join S1 ⋈_G S2 of §II-B: tuples t1, t2
// join iff vertices matching them are within k hops in G. Matching uses
// the supplied HER matcher on both sides; connectivity uses BFS from each
// distinct left vertex (equivalent to the paper's bidirectional search,
// and cheaper when one side repeats vertices). A schema collision
// between the two sides' qualified names surfaces as an error.
func LinkJoin(s1, s2 *rel.Relation, g *graph.Graph, matcher her.Matcher, k int) (*rel.Relation, error) {
	return rel.Materialize(nil, LinkJoinIter(g, matcher, k, 0, rel.NewScan(s1), rel.NewScan(s2)))
}

// BaseSpec describes one base relation to pre-process for static joins.
type BaseSpec struct {
	D       *rel.Relation
	AR      []string    // reference keyword list for this schema
	Matcher her.Matcher // HER used offline
}

// Materialized is the offline pre-computation of §IV-A: for every base
// relation D of the database it stores the HER match relation f(D,G), the
// extracted relation h(D,G) for the reference keywords AR, and a cache gL
// of link-join connectivity relations — so well-behaved gSQL queries run
// as plain relational joins without invoking HER or RExt online.
type Materialized struct {
	G      *graph.Graph
	models Models
	cfg    Config

	bases map[string]*BaseMaterialization
	gl    *glCache
}

// BaseMaterialization holds the pre-computation for one base relation.
type BaseMaterialization struct {
	Spec      BaseSpec
	Extractor *Extractor
	MatchRel  *rel.Relation // f(D,G) joined by base key + vid
	Extracted *rel.Relation // h(D,G)
}

// AR returns the reference keywords for this base.
func (b *BaseMaterialization) AR() []string { return b.Spec.AR }

// BuildMaterialized runs the offline preprocessing for every base
// relation: HER matching and RExt extraction with keywords AR.
func BuildMaterialized(g *graph.Graph, models Models, specs map[string]BaseSpec, cfg Config) (*Materialized, error) {
	m := &Materialized{
		G: g, models: models, cfg: cfg,
		bases: map[string]*BaseMaterialization{},
		gl:    newGLCache(),
	}
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := specs[name]
		c := cfg
		c.Keywords = spec.AR
		c.MaxAttrs = len(spec.AR)
		ex := NewExtractor(g, models, c)
		matches := spec.Matcher.Match(spec.D, g)
		dg, err := ex.Run(spec.D, matches)
		if err != nil {
			return nil, fmt.Errorf("core: materialising %s: %w", name, err)
		}
		m.bases[name] = &BaseMaterialization{
			Spec:      spec,
			Extractor: ex,
			MatchRel:  matchRelation(spec.D, matches),
			Extracted: dg,
		}
	}
	return m, nil
}

// Base returns the materialisation for a base relation, or nil.
func (m *Materialized) Base(name string) *BaseMaterialization { return m.bases[name] }

// SetBase replaces (or installs) the materialisation for one base —
// the gSQL OPEN statement uses it to rebind a base to its recovered
// durable state.
func (m *Materialized) SetBase(name string, b *BaseMaterialization) { m.bases[name] = b }

// WellBehavedKeywords reports whether A ⊆ AR for the named base relation
// (condition (1) of well-behaved enrichment joins).
func (m *Materialized) WellBehavedKeywords(base string, a []string) bool {
	b := m.bases[base]
	if b == nil {
		return false
	}
	have := map[string]bool{}
	for _, kw := range b.Spec.AR {
		have[kw] = true
	}
	for _, kw := range a {
		if !have[kw] {
			return false
		}
	}
	return true
}

// StaticEnrich answers a well-behaved enrichment join S ⋈_A G where S is
// a (subset of a) base relation: the three-way natural join
// S ⋈ f(D,G) ⋈ h(D,G) over the pre-computed relations, projected to S's
// attributes plus vid plus A. Neither HER nor RExt runs.
func (m *Materialized) StaticEnrich(base string, s *rel.Relation, a []string) (*rel.Relation, error) {
	it, err := m.StaticEnrichIter(base, rel.NewScan(s), a)
	if err != nil {
		return nil, err
	}
	return rel.Materialize(nil, it)
}

// LinkCacheKey builds the gL cache key for a pair of predicate
// signatures over two base relations (§IV-A: gL is specified by predicate
// sets P and P′, the selection conditions of the two sub-queries).
func LinkCacheKey(base1, pred1, base2, pred2 string, k int) string {
	return fmt.Sprintf("%s[%s]|%s[%s]|k=%d", base1, pred1, base2, pred2, k)
}

// StaticLink answers a link join S1 ⋈_G S2 over subsets of base
// relations using pre-computed matches; the connectivity relation is
// cached under cacheKey so repeated queries with the same predicates are
// answered without traversing G. BFS fan-out runs at the default
// (GOMAXPROCS) parallelism; use StaticLinkIter for an explicit degree.
func (m *Materialized) StaticLink(base1 string, s1 *rel.Relation, base2 string, s2 *rel.Relation, k int, cacheKey string) (*rel.Relation, error) {
	return rel.Materialize(nil,
		m.StaticLinkIter(base1, rel.NewScan(s1), base2, rel.NewScan(s2), k, 0, cacheKey))
}

// GLCacheSize returns the number of cached connectivity relations and
// their total tuple count.
func (m *Materialized) GLCacheSize() (relations, tuples int) {
	return m.gl.stats()
}

// ClearGLCache discards every completed gL connectivity relation,
// returning the cache to its cold state (in-flight computations are left
// to finish and are dropped on completion by normal eviction pressure).
// Metamorphic tests use it to compare cache-cold against cache-warm
// executions of the same query on one materialisation.
func (m *Materialized) ClearGLCache() {
	m.gl.clear()
}

// SetGLCacheCap rebounds the gL cache to at most n resident relations
// (split evenly over the shards), evicting least-recently-used entries
// immediately if the current contents exceed the new cap. n <= 0
// removes the bound. The default is DefaultGLCacheCap.
func (m *Materialized) SetGLCacheCap(n int) {
	m.gl.setCap(n)
}

// restrictMatches narrows a base's pre-computed matches to the tuples
// present in s (a selection over the base relation), re-indexing TupleIdx
// into s.
func restrictMatches(b *BaseMaterialization, s *rel.Relation) []her.Match {
	keyCol := s.Schema.KeyCol()
	if keyCol < 0 {
		return nil
	}
	byTID := map[string]her.Match{}
	for _, m := range b.Extractor.Matches() {
		byTID[m.TID.String()] = m
	}
	var out []her.Match
	for ti, t := range s.Tuples {
		if m, ok := byTID[t[keyCol].String()]; ok {
			m.TupleIdx = ti
			out = append(out, m)
		}
	}
	return out
}

// NormalizeAttr lowercases and strips non-alphanumerics for schema-level
// attribute matching in heuristic joins.
func NormalizeAttr(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}
