// Parallel kernels for the semantic-join hot paths. The dominant cost
// of link joins is the per-source-vertex k-hop BFS fan-out, which is
// embarrassingly parallel across distinct source vertices; this file
// provides the bounded worker pool that computes it, and the
// shard-locked singleflight cache that lets concurrent queries share
// gL connectivity relations without duplicating BFS work. The graph
// read path (Neighbors/Out/In/Live) is goroutine-safe once mutation
// has stopped, which is the regime every pool here runs in.
package core

import (
	"context"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// normPar resolves a degree-of-parallelism knob: any value <= 0 means
// "one worker per logical CPU" (GOMAXPROCS).
func normPar(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// reachSets computes the k-hop set per distinct live left vertex
// (equivalent to the paper's bidirectional search, and cheaper when
// one side repeats vertices), fanning the per-vertex BFS out over a
// bounded pool. It reports the number of workers actually used and
// honours ctx cancellation between vertices.
func reachSets(ctx context.Context, g *graph.Graph, m1 []her.Match, k, par int) (map[graph.VertexID]map[graph.VertexID]bool, int, error) {
	var verts []graph.VertexID
	seen := map[graph.VertexID]bool{}
	for _, m := range m1 {
		if !seen[m.Vertex] && g.Live(m.Vertex) {
			seen[m.Vertex] = true
			verts = append(verts, m.Vertex)
		}
	}
	workers := normPar(par)
	if workers > len(verts) {
		workers = len(verts)
	}
	reach := make(map[graph.VertexID]map[graph.VertexID]bool, len(verts))
	if workers <= 1 {
		for _, v := range verts {
			if err := ctx.Err(); err != nil {
				return nil, 1, err
			}
			reach[v] = g.KHopNeighborhood([]graph.VertexID{v}, k)
		}
		return reach, 1, nil
	}
	sets := make([]map[graph.VertexID]bool, len(verts))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(verts) || ctx.Err() != nil {
					return
				}
				sets[i] = g.KHopNeighborhood([]graph.VertexID{verts[i]}, k)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, workers, err
	}
	for i, v := range verts {
		reach[v] = sets[i]
	}
	return reach, workers, nil
}

// glRelation materialises the connectivity pairs (vid1, vid2) for the
// matched vertices of two tuple sets, with the per-vertex BFS fan-out
// parallelised over par workers. Pair order is deterministic (m1 then
// m2 order) regardless of parallelism.
func glRelation(ctx context.Context, g *graph.Graph, m1, m2 []her.Match, k, par int) (*rel.Relation, error) {
	reach, _, err := reachSets(ctx, g, m1, k, par)
	if err != nil {
		return nil, err
	}
	schema := rel.NewSchema("gl", "",
		rel.Attribute{Name: "vid1", Type: rel.KindInt},
		rel.Attribute{Name: "vid2", Type: rel.KindInt},
	)
	r := rel.NewRelation(schema)
	seen := map[[2]graph.VertexID]bool{}
	for _, a := range m1 {
		set, ok := reach[a.Vertex]
		if !ok {
			continue
		}
		for _, b := range m2 {
			key := [2]graph.VertexID{a.Vertex, b.Vertex}
			if set[b.Vertex] && !seen[key] {
				seen[key] = true
				r.InsertVals(rel.I(int64(a.Vertex)), rel.I(int64(b.Vertex)))
			}
		}
	}
	return r, nil
}

// ------------------------------------------------------------ gL cache

const glShards = 16

var glHashSeed = maphash.MakeSeed()

// glEntry is one in-flight or completed gL computation. ready is
// closed once rel/err are set.
type glEntry struct {
	ready chan struct{}
	rel   *rel.Relation
	err   error
}

type glShard struct {
	mu sync.Mutex
	m  map[string]*glEntry
}

// glCache is the shard-locked singleflight cache of gL connectivity
// relations: concurrent queries with the same predicate key share one
// BFS computation — the first caller computes while the rest wait.
type glCache struct {
	shards [glShards]glShard
}

func newGLCache() *glCache {
	c := &glCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*glEntry)
	}
	return c
}

func (c *glCache) shard(key string) *glShard {
	return &c.shards[maphash.String(glHashSeed, key)%glShards]
}

// getOrCompute returns the relation cached under key, computing it at
// most once across concurrent callers. hit reports whether the value
// existed (or was being computed by someone else) before this call.
// Errors are not cached: a failed computation is evicted so the next
// caller retries.
func (c *glCache) getOrCompute(ctx context.Context, key string, compute func() (*rel.Relation, error)) (r *rel.Relation, hit bool, err error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.ready:
			return e.rel, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &glEntry{ready: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()
	e.rel, e.err = compute()
	if e.err != nil {
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
	}
	close(e.ready)
	return e.rel, false, e.err
}

// stats counts completed cache entries and their total tuples.
// In-flight computations are not counted.
func (c *glCache) stats() (relations, tuples int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			select {
			case <-e.ready:
				if e.err == nil && e.rel != nil {
					relations++
					tuples += e.rel.Len()
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	return
}
