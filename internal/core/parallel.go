// Parallel kernels for the semantic-join hot paths. The dominant cost
// of link joins is the per-source-vertex k-hop BFS fan-out, which is
// embarrassingly parallel across distinct source vertices; this file
// provides the bounded worker pool that computes it, and the
// shard-locked singleflight cache that lets concurrent queries share
// gL connectivity relations without duplicating BFS work. The graph
// read path (Neighbors/Out/In/Live) is goroutine-safe once mutation
// has stopped, which is the regime every pool here runs in.
package core

import (
	"container/list"
	"context"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// normPar resolves a degree-of-parallelism knob: any value <= 0 means
// "one worker per logical CPU" (GOMAXPROCS).
func normPar(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// glRelation materialises the connectivity pairs (vid1, vid2) for the
// matched vertices of two tuple sets, with the per-vertex BFS fan-out
// parallelised over par workers. Pair order is deterministic (m1 then
// m2 order) regardless of parallelism.
func glRelation(ctx context.Context, g *graph.Graph, m1, m2 []her.Match, k, par int) (*rel.Relation, error) {
	reach, _, err := reachSets(ctx, g, m1, k, par)
	if err != nil {
		return nil, err
	}
	schema := rel.NewSchema("gl", "",
		rel.Attribute{Name: "vid1", Type: rel.KindInt},
		rel.Attribute{Name: "vid2", Type: rel.KindInt},
	)
	r := rel.NewRelation(schema)
	seen := map[[2]graph.VertexID]bool{}
	for _, a := range m1 {
		if _, ok := reach.rows[a.Vertex]; !ok {
			continue
		}
		for _, b := range m2 {
			key := [2]graph.VertexID{a.Vertex, b.Vertex}
			if reach.connected(a.Vertex, b.Vertex) && !seen[key] {
				seen[key] = true
				r.InsertVals(rel.I(int64(a.Vertex)), rel.I(int64(b.Vertex)))
			}
		}
	}
	return r, nil
}

// ------------------------------------------------------------ gL cache

const glShards = 16

// DefaultGLCacheCap bounds the total number of resident gL relations
// across all shards. Long-running engines see an unbounded stream of
// distinct predicate pairs, so without a cap the cache grows without
// limit; 256 relations comfortably covers a working set of repeated
// queries. Use Materialized.SetGLCacheCap to change it (0 = unbounded).
const DefaultGLCacheCap = 256

var glHashSeed = maphash.MakeSeed()

// glEntry is one in-flight or completed gL computation. ready is
// closed once rel/err are set.
type glEntry struct {
	ready chan struct{}
	rel   *rel.Relation
	err   error
}

// glNode ties a cache entry to its LRU list position.
type glNode struct {
	key  string
	e    *glEntry
	elem *list.Element
}

type glShard struct {
	mu  sync.Mutex
	m   map[string]*glNode
	lru *list.List // front = most recently used; values are *glNode
	cap int        // max entries in this shard, 0 = unbounded
}

// glCache is the shard-locked singleflight cache of gL connectivity
// relations: concurrent queries with the same predicate key share one
// BFS computation — the first caller computes while the rest wait.
// Each shard keeps an LRU list so the resident set stays under a cap;
// in-flight computations are pinned (never evicted mid-compute).
type glCache struct {
	shards   [glShards]glShard
	resident atomic.Int64 // completed, non-error entries across shards
	tuples   atomic.Int64 // their total tuple count
}

func newGLCache() *glCache { return newGLCacheCap(DefaultGLCacheCap) }

func newGLCacheCap(total int) *glCache {
	c := &glCache{}
	per := perShardCap(total)
	for i := range c.shards {
		c.shards[i].m = make(map[string]*glNode)
		c.shards[i].lru = list.New()
		c.shards[i].cap = per
	}
	return c
}

func perShardCap(total int) int {
	if total <= 0 {
		return 0
	}
	per := total / glShards
	if per < 1 {
		per = 1
	}
	return per
}

// clear drops every completed entry from every shard. Entries still
// computing are kept: removing them would detach their singleflight
// waiters.
func (c *glCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, n := range sh.m {
			select {
			case <-n.e.ready:
				sh.lru.Remove(n.elem)
				delete(sh.m, key)
				if n.e.err == nil && n.e.rel != nil {
					c.resident.Add(-1)
					c.tuples.Add(-int64(n.e.rel.Len()))
				}
			default: // in-flight; pinned
			}
		}
		sh.mu.Unlock()
	}
}

// setCap rebounds every shard and evicts immediately if shrinking.
func (c *glCache) setCap(total int) {
	per := perShardCap(total)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.cap = per
		c.evictLocked(sh, nil)
		sh.mu.Unlock()
	}
}

func (c *glCache) shard(key string) *glShard {
	return &c.shards[maphash.String(glHashSeed, key)%glShards]
}

// evictLocked drops least-recently-used completed entries until the
// shard fits its cap. Entries still computing are skipped: evicting
// them would detach waiters from the singleflight. Caller holds sh.mu.
func (c *glCache) evictLocked(sh *glShard, reg *obs.Registry) {
	if sh.cap <= 0 {
		return
	}
	for sh.lru.Len() > sh.cap {
		evicted := false
		for el := sh.lru.Back(); el != nil; el = el.Prev() {
			n := el.Value.(*glNode)
			select {
			case <-n.e.ready:
			default:
				continue // in-flight; pinned
			}
			sh.lru.Remove(el)
			delete(sh.m, n.key)
			if n.e.err == nil && n.e.rel != nil {
				c.resident.Add(-1)
				c.tuples.Add(-int64(n.e.rel.Len()))
			}
			reg.Counter("core_gl_evictions_total").Inc()
			evicted = true
			break
		}
		if !evicted {
			return // everything over cap is still computing
		}
	}
}

func (c *glCache) updateGauges(reg *obs.Registry) {
	reg.Gauge("core_gl_entries").Set(c.resident.Load())
	reg.Gauge("core_gl_tuples").Set(c.tuples.Load())
}

// getOrCompute returns the relation cached under key, computing it at
// most once across concurrent callers. hit reports whether the value
// existed (or was being computed by someone else) before this call.
// Errors are not cached: a failed computation is evicted so the next
// caller retries. Cache traffic is reported to the registry on ctx
// (hits, misses, singleflight coalesces, evictions, resident gauges).
func (c *glCache) getOrCompute(ctx context.Context, key string, compute func() (*rel.Relation, error)) (r *rel.Relation, hit bool, err error) {
	reg := obs.FromContext(ctx)
	sh := c.shard(key)
	sh.mu.Lock()
	if n, ok := sh.m[key]; ok {
		sh.lru.MoveToFront(n.elem)
		e := n.e
		sh.mu.Unlock()
		select {
		case <-e.ready:
			reg.Counter("core_gl_hits_total").Inc()
		default:
			// Someone else is computing this key right now; we ride
			// along on their result instead of duplicating the BFS.
			reg.Counter("core_gl_coalesces_total").Inc()
		}
		select {
		case <-e.ready:
			return e.rel, true, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &glEntry{ready: make(chan struct{})}
	n := &glNode{key: key, e: e}
	n.elem = sh.lru.PushFront(n)
	sh.m[key] = n
	c.evictLocked(sh, reg)
	sh.mu.Unlock()
	reg.Counter("core_gl_misses_total").Inc()

	e.rel, e.err = compute()
	close(e.ready)
	sh.mu.Lock()
	if e.err != nil {
		// Remove only if the map still points at our node — an eviction
		// may already have raced it out.
		if cur, ok := sh.m[key]; ok && cur == n {
			delete(sh.m, key)
			sh.lru.Remove(n.elem)
		}
	} else {
		c.resident.Add(1)
		c.tuples.Add(int64(e.rel.Len()))
	}
	sh.mu.Unlock()
	c.updateGauges(reg)
	return e.rel, false, e.err
}

// stats counts completed cache entries and their total tuples.
// In-flight computations are not counted.
func (c *glCache) stats() (relations, tuples int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, n := range sh.m {
			select {
			case <-n.e.ready:
				if n.e.err == nil && n.e.rel != nil {
					relations++
					tuples += n.e.rel.Len()
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	return
}
