package mat

import "math"

// RNG is a small deterministic pseudo-random number generator
// (splitmix64-seeded xorshift*), used so that every experiment in the
// repository is reproducible from a seed without importing math/rand into
// hot loops. The zero value is not valid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed via one splitmix64 round.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	r.state = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive n") //lint:allow nopanic mirrors math/rand.Intn contract
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the n elements addressed by swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillUniform fills v with uniform values in [-a, a).
func (r *RNG) FillUniform(v Vector, a float64) {
	for i := range v {
		v[i] = (r.Float64()*2 - 1) * a
	}
}

// FillNormal fills v with normal(0, sigma) values.
func (r *RNG) FillNormal(v Vector, sigma float64) {
	for i := range v {
		v[i] = r.NormFloat64() * sigma
	}
}
