package mat

import "fmt"

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols)) //lint:allow nopanic programmer-error guard: dimensions are compile-time constants in callers
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores x at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector sharing m's backing store.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element of m by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add accumulates o into m element-wise. Shapes must match.
func (m *Matrix) Add(o *Matrix) {
	m.checkSameShape(o)
	for i, x := range o.Data {
		m.Data[i] += x
	}
}

// AddScaled accumulates a*o into m element-wise. Shapes must match.
func (m *Matrix) AddScaled(a float64, o *Matrix) {
	m.checkSameShape(o)
	for i, x := range o.Data {
		m.Data[i] += a * x
	}
}

// MulVec computes dst = m·v, where v has length m.Cols and dst has length
// m.Rows. dst must not alias v. It returns dst.
func (m *Matrix) MulVec(dst, v Vector) Vector {
	checkLen(len(v), m.Cols)
	checkLen(len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT computes dst = mᵀ·v, where v has length m.Rows and dst has length
// m.Cols. dst must not alias v. It returns dst.
func (m *Matrix) MulVecT(dst, v Vector) Vector {
	checkLen(len(v), m.Rows)
	checkLen(len(dst), m.Cols)
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		a := v[i]
		if a == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst[j] += a * x
		}
	}
	return dst
}

// AddOuter accumulates the outer product a·u·vᵀ into m, where u has length
// m.Rows and v has length m.Cols.
func (m *Matrix) AddOuter(a float64, u, v Vector) {
	checkLen(len(u), m.Rows)
	checkLen(len(v), m.Cols)
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		c := a * ui
		for j, vj := range v {
			row[j] += c * vj
		}
	}
}

// Clip bounds every element of m to [-c, c].
func (m *Matrix) Clip(c float64) { Vector(m.Data).Clip(c) }

func (m *Matrix) checkSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d != %dx%d", m.Rows, m.Cols, o.Rows, o.Cols)) //lint:allow nopanic shape invariant: linear-algebra misuse, not a data error
	}
}
