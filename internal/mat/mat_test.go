package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// sanitize maps quick-generated extreme values into a range where the
// arithmetic under test cannot overflow to Inf.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("Scale: got %v", v)
	}
	v.AddScaled(0.5, w)
	if v[0] != 4 || v[1] != 6.5 || v[2] != 9 {
		t.Fatalf("AddScaled: got %v", v)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestDotNormCosine(t *testing.T) {
	v := Vector{3, 4}
	if got := Dot(v, v); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Cosine(v, Vector{6, 8}); !almostEqual(got, 1) {
		t.Fatalf("Cosine parallel = %v, want 1", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 0) {
		t.Fatalf("Cosine orthogonal = %v, want 0", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{-1, 0}); !almostEqual(got, -1) {
		t.Fatalf("Cosine antiparallel = %v, want -1", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Fatalf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	Normalize(v)
	if !almostEqual(Norm(v), 1) {
		t.Fatalf("norm after Normalize = %v", Norm(v))
	}
	z := Vector{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize of zero vector changed it: %v", z)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist(Vector{0, 0}, Vector{3, 4}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestConcatMeanArgMax(t *testing.T) {
	c := Concat(Vector{1, 2}, Vector{3})
	if len(c) != 3 || c[2] != 3 {
		t.Fatalf("Concat: got %v", c)
	}
	m := Mean([]Vector{{1, 3}, {3, 5}})
	if m[0] != 2 || m[1] != 4 {
		t.Fatalf("Mean: got %v", m)
	}
	if Mean(nil) != nil {
		t.Fatal("Mean(nil) should be nil")
	}
	if got := ArgMax(Vector{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d, want 1", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestSoftmax(t *testing.T) {
	v := Vector{1, 2, 3}
	out := Softmax(NewVector(3), v)
	var sum float64
	for _, x := range out {
		sum += x
	}
	if !almostEqual(sum, 1) {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
	// Stability with large values.
	big := Softmax(NewVector(2), Vector{1000, 1000})
	if !almostEqual(big[0], 0.5) {
		t.Fatalf("softmax overflow: %v", big)
	}
}

func TestClip(t *testing.T) {
	v := Vector{-10, 0.5, 10}
	v.Clip(1)
	if v[0] != -1 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("Clip: got %v", v)
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := m.MulVec(NewVector(2), Vector{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec: got %v", dst)
	}
	dt := m.MulVecT(NewVector(3), Vector{1, 1})
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Fatalf("MulVecT: got %v", dt)
	}
}

func TestMatrixAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, x := range want {
		if m.Data[i] != x {
			t.Fatalf("AddOuter: got %v, want %v", m.Data, want)
		}
	}
}

func TestMatrixRowSharesBacking(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestMatrixShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewMatrix(1, 2).Add(NewMatrix(2, 1))
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must still produce a non-degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, x := range p {
		if x < 0 || x >= 50 || seen[x] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[x] = true
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosineProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := Vector(a[:]).Clone(), Vector(b[:]).Clone()
		for i := range v {
			v[i] = sanitize(v[i])
			w[i] = sanitize(w[i])
		}
		c1, c2 := Cosine(v, w), Cosine(w, v)
		if math.IsNaN(c1) || math.IsNaN(c2) {
			return false
		}
		return almostEqual(c1, c2) && c1 <= 1+1e-9 && c1 >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: normalising any non-zero vector yields unit norm.
func TestNormalizeProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		v := Vector(a[:]).Clone()
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				v[i] = 0
			}
		}
		Normalize(v)
		n := Norm(v)
		return n == 0 || math.Abs(n-1) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a [5]float64) bool {
		v := Vector(a[:]).Clone()
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				v[i] = 0
			}
		}
		out := Softmax(NewVector(len(v)), v)
		var sum float64
		for _, x := range out {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixSmallOps(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Fatal("Set/At wrong")
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone should not share storage")
	}
	m.Scale(2)
	if m.At(0, 1) != 10 {
		t.Fatal("Scale wrong")
	}
	o := NewMatrix(2, 2)
	o.Set(1, 0, 3)
	m.AddScaled(2, o)
	if m.At(1, 0) != 6 {
		t.Fatal("AddScaled wrong")
	}
	m.Clip(5)
	if m.At(0, 1) != 5 {
		t.Fatal("Clip wrong")
	}
	m.Zero()
	if m.At(0, 1) != 0 || m.At(1, 0) != 0 {
		t.Fatal("Zero wrong")
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestRNGFillAndShuffle(t *testing.T) {
	r := NewRNG(21)
	v := NewVector(64)
	r.FillUniform(v, 0.5)
	for _, x := range v {
		if x < -0.5 || x >= 0.5 {
			t.Fatalf("uniform out of range: %v", x)
		}
	}
	r.FillNormal(v, 2)
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero < 60 {
		t.Fatal("normal fill left zeros")
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Fatal("shuffle lost elements")
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}
