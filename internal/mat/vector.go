// Package mat provides the small dense linear-algebra kernel used by the
// learned components of semjoin: the LSTM language model, the GloVe-style
// word embedder, and k-means clustering. It is deliberately minimal —
// float64 vectors and row-major matrices with the handful of BLAS-like
// operations those consumers need — and has no dependencies beyond the
// standard library.
package mat

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// Add accumulates w into v element-wise. It panics if lengths differ.
func (v Vector) Add(w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += x
	}
}

// Sub subtracts w from v element-wise. It panics if lengths differ.
func (v Vector) Sub(w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] -= x
	}
}

// Scale multiplies every element of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddScaled accumulates a*w into v. It panics if lengths differ.
func (v Vector) AddScaled(a float64, w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += a * x
	}
}

// MulElem multiplies v by w element-wise. It panics if lengths differ.
func (v Vector) MulElem(w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] *= x
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func Dot(v, w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit L2 norm in place and returns v. A zero vector
// is left unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n > 0 {
		v.Scale(1 / n)
	}
	return v
}

// Cosine returns the cosine similarity of v and w in [-1, 1]. If either
// vector has zero norm the similarity is 0.
func Cosine(v, w Vector) float64 {
	checkLen(len(v), len(w))
	var dot, nv, nw float64
	for i, x := range v {
		y := w[i]
		dot += x * y
		nv += x * x
		nw += y * y
	}
	if nv == 0 || nw == 0 {
		return 0
	}
	return dot / math.Sqrt(nv*nw)
}

// SqDist returns the squared Euclidean distance between v and w.
func SqDist(v, w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i, x := range v {
		d := x - w[i]
		s += d * d
	}
	return s
}

// Concat returns a new vector holding the elements of v followed by w.
func Concat(v, w Vector) Vector {
	out := make(Vector, 0, len(v)+len(w))
	out = append(out, v...)
	return append(out, w...)
}

// Mean returns the element-wise mean of vs. All vectors must share the same
// length; the mean of an empty set has length 0.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := NewVector(len(vs[0]))
	for _, v := range vs {
		out.Add(v)
	}
	out.Scale(1 / float64(len(vs)))
	return out
}

// ArgMax returns the index of the largest element of v, or -1 if v is empty.
func ArgMax(v Vector) int {
	if len(v) == 0 {
		return -1
	}
	best, arg := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, arg = x, i+1
		}
	}
	return arg
}

// Softmax writes the softmax of v into dst (which may alias v) and returns
// dst. It is numerically stabilised by subtracting the maximum.
func Softmax(dst, v Vector) Vector {
	checkLen(len(dst), len(v))
	if len(v) == 0 {
		return dst
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Tanh returns the hyperbolic tangent of x.
func Tanh(x float64) float64 { return math.Tanh(x) }

// Clip bounds every element of v to [-c, c].
func (v Vector) Clip(c float64) {
	for i, x := range v {
		if x > c {
			v[i] = c
		} else if x < -c {
			v[i] = -c
		}
	}
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mat: length mismatch %d != %d", a, b)) //lint:allow nopanic shape invariant: linear-algebra misuse, not a data error
	}
}
