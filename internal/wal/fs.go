package wal

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// FS is the filesystem surface the log needs. Production uses OSFS;
// crash-point and fault-injection tests substitute MemFS (which can
// simulate power loss) or wrappers that fail writes and fsyncs.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
	Rename(oldname, newname string) error
	Truncate(name string, size int64) error
	// SyncDir flushes directory metadata (created/renamed/removed
	// entries) to stable storage.
	SyncDir(dir string) error
}

// File is an open log segment.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll creates dir and parents.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create opens name for writing, truncating existing content.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

// OpenAppend opens an existing file for appending.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile reads the whole file.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir lists file names in dir.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Remove deletes a file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename atomically renames a file.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Truncate cuts a file to size bytes.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir fsyncs the directory so entry creation/removal is durable.
// Best-effort: some filesystems reject fsync on directories, which
// must not wedge the log.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	_ = d.Sync()
	return d.Close()
}

// MemFS is an in-memory filesystem that models the durability gap
// between written and fsynced bytes: every file tracks the bytes
// written so far and, separately, the prefix state captured by the
// last Sync. Crash reverts every file to its synced state — the
// power-loss simulation the crash-point and acked-loss tests are
// built on. (A real kernel may flush more than was fsynced; reverting
// to exactly the synced state is the adversarial choice, so anything
// the tests prove holds under friendlier kernels too.)
type MemFS struct {
	mu    sync.Mutex
	dirs  map[string]bool
	files map[string]*memFile
}

type memFile struct {
	data    []byte
	durable []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{dirs: map[string]bool{}, files: map[string]*memFile{}}
}

// Crash simulates power loss: every file reverts to its last-synced
// content and unsynced directory entries (created files never covered
// by a SyncDir) vanish.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if f.durable == nil {
			delete(m.files, name)
			continue
		}
		f.data = append([]byte(nil), f.durable...)
	}
}

// CorruptByte flips a byte of a file in place (both written and
// durable views), for corruption tests.
func (m *MemFS) CorruptByte(name string, off int, xor byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: no file %q", name)
	}
	if off < 0 || off >= len(f.data) {
		return fmt.Errorf("memfs: offset %d outside %q (%d bytes)", off, name, len(f.data))
	}
	f.data[off] ^= xor
	if off < len(f.durable) {
		f.durable[off] ^= xor
	}
	return nil
}

// MkdirAll records dir as existing.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Create opens name for writing, truncating existing content.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return &memHandle{fs: m, f: f}, nil
}

// OpenAppend opens name for appending, creating it if absent.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memHandle{fs: m, f: f}, nil
}

// ReadFile reads the whole (written, not necessarily durable) file.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: no file %q", name)
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces a file's content outright (durable immediately),
// for test setup.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{
		data:    append([]byte(nil), data...),
		durable: append([]byte(nil), data...),
	}
}

// ReadDir lists file names under dir.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) && !strings.Contains(name[len(prefix):], "/") {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes a file.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: no file %q", name)
	}
	delete(m.files, name)
	return nil
}

// Rename moves a file.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: no file %q", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Truncate cuts a file to size bytes.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: no file %q", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %q to %d outside [0,%d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if int64(len(f.durable)) > size {
		f.durable = f.durable[:size]
	}
	return nil
}

// SyncDir makes current directory entries durable. In MemFS file
// creation is the mutation that Crash can lose; SyncDir pins every
// currently-present file so at least its (possibly empty) synced
// content survives.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for name, f := range m.files {
		if strings.HasPrefix(name, prefix) && f.durable == nil {
			f.durable = []byte{}
		}
	}
	return nil
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("memfs: write on closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("memfs: sync on closed file")
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
