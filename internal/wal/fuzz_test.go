package wal

import (
	"bytes"
	"errors"
	"testing"
)

// validLogImage builds the canonical valid segment image the fuzzer
// mutates: a handful of records with varied types and payload sizes.
func validLogImage() []byte {
	var data []byte
	for i := 0; i < 8; i++ {
		data = AppendRecord(data, Record{Type: byte(i%3 + 1), Seq: uint64(i + 1), Payload: testPayload(i)})
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes — the seed corpus is byte
// mutations of a valid log — through the recovery scanner and a full
// Open, asserting the WAL's replay contract: any input yields a clean
// truncation (a record prefix plus an ignorable torn tail) or a typed
// *CorruptRecordError — never a panic and never a silent misparse
// (accepted frames must re-encode to exactly the bytes they were
// scanned from).
func FuzzWALReplay(f *testing.F) {
	valid := validLogImage()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])        // torn tail
	f.Add([]byte{})                    // empty log
	f.Add(bytes.Repeat([]byte{0}, 64)) // zero frames
	mut := append([]byte(nil), valid...)
	mut[frameHeaderLen+2] ^= 0x40 // flipped payload byte in record 1
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off, err := Scan(data, 1)
		if err != nil {
			var cerr *CorruptRecordError
			if !errors.As(err, &cerr) {
				t.Fatalf("Scan returned untyped error %T: %v", err, err)
			}
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("Scan offset %d outside [0,%d]", off, len(data))
		}
		// No silent misparse: re-encoding the accepted records must
		// reproduce the consumed bytes exactly.
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:off]) {
			t.Fatalf("accepted records re-encode to %d bytes != consumed prefix %d", len(re), off)
		}
		// A full Open over the same image must agree with Scan in
		// non-strict mode and recover exactly the accepted prefix.
		fs := NewMemFS()
		fs.WriteFile("db/"+segName(1), data)
		l, oerr := Open("db", Options{FS: fs})
		if oerr != nil {
			t.Fatalf("non-strict Open failed on single-segment image: %v", oerr)
		}
		if len(l.Records()) != len(recs) {
			t.Fatalf("Open recovered %d records, Scan accepted %d", len(l.Records()), len(recs))
		}
		if _, aerr := l.Append(1, []byte("resume")); aerr != nil {
			t.Fatalf("append after fuzzed recovery: %v", aerr)
		}
		l.Close()
	})
}
