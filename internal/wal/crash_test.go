package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// faultFS wraps an FS and injects failures into segment writes and
// fsyncs: when writesUntilFail reaches zero the next Write persists
// only half its bytes (a short write) and errors; when syncsUntilFail
// reaches zero the next Sync fails without making anything durable.
// -1 disables a fault counter.
type faultFS struct {
	FS
	writesUntilFail int
	syncsUntilFail  int
}

var (
	errInjectedWrite = errors.New("injected short write")
	errInjectedSync  = errors.New("injected fsync failure")
)

func (f *faultFS) Create(name string) (File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) OpenAppend(name string) (File, error) {
	file, err := f.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.writesUntilFail == 0 {
		short := p[:len(p)/2]
		n, _ := f.File.Write(short)
		return n, errInjectedWrite
	}
	if f.fs.writesUntilFail > 0 {
		f.fs.writesUntilFail--
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.syncsUntilFail == 0 {
		return errInjectedSync
	}
	if f.fs.syncsUntilFail > 0 {
		f.fs.syncsUntilFail--
	}
	return f.File.Sync()
}

// buildLog appends n records (varied sizes) to a fresh MemFS log and
// returns the filesystem, the raw segment image and the per-record
// end offsets: ends[i] is the first byte offset past record i's frame.
func buildLog(t *testing.T, n int) (*MemFS, []byte, []int64) {
	t.Helper()
	fs := NewMemFS()
	l, err := Open("db", Options{Policy: SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ends := make([]int64, n)
	off := int64(0)
	for i := 0; i < n; i++ {
		p := testPayload(i)
		if _, err := l.Append(byte(i%3+1), p); err != nil {
			t.Fatal(err)
		}
		off += int64(frameHeaderLen + recHeaderLen + len(p))
		ends[i] = off
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("db/" + segName(1))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != ends[n-1] {
		t.Fatalf("segment is %d bytes, expected %d", len(data), ends[n-1])
	}
	return fs, data, ends
}

// completeBefore returns how many records fit entirely within the
// first cut bytes.
func completeBefore(ends []int64, cut int64) int {
	n := 0
	for _, e := range ends {
		if e <= cut {
			n++
		}
	}
	return n
}

// TestCrashPointMatrixEveryOffset is the exhaustive crash-point
// harness: a 220-record log is truncated at EVERY byte offset, and
// recovery must yield exactly the records whose frames survived in
// full — prefix consistency with zero acknowledged-update loss (every
// record was appended under SyncAlways, so the acked set IS the
// surviving-prefix set at each record boundary) — and leave the log
// writable at the continued sequence.
func TestCrashPointMatrixEveryOffset(t *testing.T) {
	const nRecords = 220
	_, data, ends := buildLog(t, nRecords)
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		want := completeBefore(ends, cut)
		fs := NewMemFS()
		fs.WriteFile("db/"+segName(1), data[:cut])
		l, err := Open("db", Options{FS: fs})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		recs := l.Records()
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, testPayload(i)) {
				t.Fatalf("cut %d: record %d damaged (seq %d)", cut, i, r.Seq)
			}
		}
		// A cut exactly on a record boundary leaves no torn tail; any
		// other cut must report truncation.
		boundary := cut == 0 || (want > 0 && ends[want-1] == cut)
		if l.Info().Truncated != !boundary {
			t.Fatalf("cut %d: Truncated=%v, boundary=%v", cut, l.Info().Truncated, boundary)
		}
		seq, err := l.Append(5, []byte("resume"))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if seq != uint64(want+1) {
			t.Fatalf("cut %d: resumed at seq %d, want %d", cut, seq, want+1)
		}
		l.Close()
	}
}

// TestCrashPointMatrixOnDisk repeats the matrix on the real
// filesystem with a smaller log, so the os.File path (O_APPEND,
// Truncate, directory listing) gets the same scrutiny as MemFS.
func TestCrashPointMatrixOnDisk(t *testing.T) {
	const nRecords = 40
	_, data, ends := buildLog(t, nRecords)
	root := t.TempDir()
	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		want := completeBefore(ends, cut)
		if len(l.Records()) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(l.Records()), want)
		}
		l.Close()
	}
}

// TestCrashMidRotation crashes at the worst rotation moments: after
// the new segment is created but before anything lands in it, and
// with the old segment's tail unsynced.
func TestCrashMidRotation(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("db", Options{Policy: SyncAlways, SegmentBytes: 150, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 12)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after rotation: the fresh segment is empty.
	fs.Crash()
	l2, err := Open("db", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, l2.Records(), 12)
	appendN(t, l2, 12, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoAckedLossUnderFsyncFailure drives SyncAlways appends into an
// injected fsync failure and then a crash: every append that returned
// nil must survive recovery; the append that failed was never acked
// and may vanish — but must vanish CLEANLY (torn-tail truncation, not
// corruption).
func TestNoAckedLossUnderFsyncFailure(t *testing.T) {
	for _, failAt := range []int{0, 1, 5, 19} {
		mem := NewMemFS()
		ffs := &faultFS{FS: mem, writesUntilFail: -1, syncsUntilFail: -1}
		l, err := Open("db", Options{Policy: SyncAlways, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for i := 0; i < 20; i++ {
			if i == failAt {
				ffs.syncsUntilFail = 0
			}
			_, err := l.Append(1, testPayload(i))
			if i == failAt {
				if err == nil {
					t.Fatalf("failAt=%d: append acked through a failed fsync", failAt)
				}
				break
			}
			if err != nil {
				t.Fatalf("failAt=%d: append %d: %v", failAt, i, err)
			}
			acked++
		}
		l.Close()
		mem.Crash()
		l2, err := Open("db", Options{FS: mem})
		if err != nil {
			t.Fatalf("failAt=%d: recovery: %v", failAt, err)
		}
		recs := l2.Records()
		if len(recs) < acked {
			t.Fatalf("failAt=%d: lost acked updates: recovered %d, acked %d", failAt, len(recs), acked)
		}
		for i, r := range recs {
			if !bytes.Equal(r.Payload, testPayload(i)) {
				t.Fatalf("failAt=%d: record %d corrupted after crash", failAt, i)
			}
		}
		l2.Close()
	}
}

// TestNoAckedLossUnderShortWrite does the same for a half-written
// frame: the short write is never acked, and after a crash the acked
// prefix recovers intact.
func TestNoAckedLossUnderShortWrite(t *testing.T) {
	for _, failAt := range []int{0, 3, 11} {
		mem := NewMemFS()
		ffs := &faultFS{FS: mem, writesUntilFail: -1, syncsUntilFail: -1}
		l, err := Open("db", Options{Policy: SyncAlways, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		acked := 0
		for i := 0; i < 15; i++ {
			if i == failAt {
				ffs.writesUntilFail = 0
			}
			_, err := l.Append(2, testPayload(i))
			if i == failAt {
				if err == nil {
					t.Fatalf("failAt=%d: short write acked", failAt)
				}
				break
			}
			if err != nil {
				t.Fatalf("failAt=%d: append %d: %v", failAt, i, err)
			}
			acked++
		}
		l.Close()
		// Without a crash the half-frame sits on disk as a torn tail.
		l2, err := Open("db", Options{FS: mem})
		if err != nil {
			t.Fatalf("failAt=%d: recovery: %v", failAt, err)
		}
		recs := l2.Records()
		if len(recs) != acked {
			t.Fatalf("failAt=%d: recovered %d records, acked %d", failAt, len(recs), acked)
		}
		if failAt >= 0 && len(recs) == acked && acked > 0 {
			if !bytes.Equal(recs[acked-1].Payload, testPayload(acked-1)) {
				t.Fatalf("failAt=%d: last acked record damaged", failAt)
			}
		}
		l2.Close()
	}
}

// TestBatchWindowLossIsBounded documents SyncBatch's contract: a
// crash loses at most the unsynced tail, and SyncedSeq names exactly
// what survives.
func TestBatchWindowLossIsBounded(t *testing.T) {
	mem := NewMemFS()
	l, err := Open("db", Options{Policy: SyncBatch, BatchEvery: 4, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10) // group commits at 4 and 8; 9,10 unsynced
	durable := l.SyncedSeq()
	if durable != 8 {
		t.Fatalf("SyncedSeq = %d, want 8", durable)
	}
	mem.Crash()
	l2, err := Open("db", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := uint64(len(l2.Records())); got != durable {
		t.Fatalf("recovered %d records, SyncedSeq promised %d", got, durable)
	}
}
