// Package wal is a write-ahead log for the transactional update streams
// of the incremental extraction engine (IncExt, §III-B): updates are
// framed as length-prefixed, CRC32-checksummed records, appended to
// segment files under a data directory, and fsynced per a configurable
// policy before the caller applies them to in-memory state
// (log-then-apply). Recovery scans the segments in order and truncates
// at the first torn record, so an acknowledged append is never lost and
// a crash mid-append never corrupts the surviving prefix.
//
// The package is byte-generic: a record is a type tag, a sequence
// number and an opaque payload. internal/core encodes the three IncExt
// update kinds (ΔG batches, ΔD relation swaps, keyword updates) into
// payloads with the internal/bin codec and replays them through a
// DurableStore.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"semjoin/internal/obs"
)

// Framing constants. A frame on disk is
//
//	[u32 length][u32 crc32(payload)][payload]
//
// where payload = [u8 type][u64 seq][body] and length = len(payload).
// Both fixed fields are little-endian; the CRC uses the IEEE
// polynomial over the whole payload, so a flipped type, seq or body
// byte is detected, and a flipped length byte either misaligns the
// frame (CRC mismatch) or points past the end of the segment (torn).
const (
	frameHeaderLen = 8         // u32 length + u32 crc
	recHeaderLen   = 9         // u8 type + u64 seq
	maxRecordLen   = 1 << 26   // bound on len(payload); guards corrupt lengths
	segPrefix      = "wal-"    // segment file name prefix
	segSuffix      = ".log"    // segment file name suffix
	firstSeq       = uint64(1) // seq of the first record in a fresh log
	defaultSegment = int64(4096) * 1024
	defaultBatch   = 64
)

// SyncPolicy selects when Append pushes bytes to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: an Append that returns nil
	// is durable. Slowest, zero-loss.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchEvery records (group commit)
	// and on Sync/Rotate/Close: a crash loses at most one batch window
	// of acknowledged-but-unsynced records.
	SyncBatch
	// SyncNever leaves syncing to the OS page cache (and to explicit
	// Sync calls): fastest, weakest.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always|batch|never)", s)
}

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Record is one logged update.
type Record struct {
	Type    byte
	Seq     uint64
	Payload []byte
}

// CorruptRecordError reports a structurally corrupt record: a CRC
// mismatch, an implausible length, a sequence discontinuity, or a
// partial frame that is not at the tail of the last segment. Torn
// tails (a partial frame at the very end of the last segment — the
// signature of a crash mid-append) are NOT corrupt: recovery truncates
// them silently.
type CorruptRecordError struct {
	Segment string // segment file name, "" when scanning raw bytes
	Offset  int64  // byte offset of the bad frame within the segment
	Seq     uint64 // expected sequence number at that frame
	Reason  string
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %q at offset %d (seq %d): %s",
		e.Segment, e.Offset, e.Seq, e.Reason)
}

// Options configures Open.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes (default 4 MiB).
	SegmentBytes int64
	// BatchEvery is the group-commit window for SyncBatch: fsync every
	// N appends (default 64).
	BatchEvery int
	// Strict makes Open fail with the underlying *CorruptRecordError
	// instead of truncating when the last segment holds a structurally
	// corrupt (not merely torn) record. Corruption in a non-last
	// segment always fails Open: truncating there would orphan every
	// later segment.
	Strict bool
	// Reg receives wal_records_total / wal_fsync_seconds metrics
	// (nil-safe: a nil registry records nothing).
	Reg *obs.Registry
	// FS overrides the filesystem (default: the operating system).
	// Tests inject MemFS or fault wrappers here.
	FS FS
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	Segments int // segment files scanned
	Records  int // complete records recovered
	// Truncated is true when the last segment held a torn or (non-
	// strict mode) corrupt suffix that recovery cut off.
	Truncated bool
	// TruncatedSegment/TruncatedAt locate the cut when Truncated.
	TruncatedSegment string
	TruncatedAt      int64
	// Corrupt is the corruption that forced the cut, nil for a plain
	// torn tail.
	Corrupt *CorruptRecordError
}

// Log is an append-only write-ahead log over a directory of segment
// files. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu        sync.Mutex
	cur       File
	curName   string
	curSize   int64
	nextSeq   uint64 // seq the next Append will receive
	syncedSeq uint64 // last seq known to be on stable storage
	unsynced  int    // appends since the last fsync
	werr      error  // sticky write/sync failure; wedges the log
	closed    bool

	recovered []Record
	info      RecoveryInfo

	recordsTotal *obs.Counter
	fsyncSec     *obs.Histogram
}

// fsyncBuckets spans 1µs..~8s, the plausible range for fsync latency.
var fsyncBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 8,
}

// Open recovers the log in dir (creating it if absent) and readies it
// for appends. Recovered records are available via Records; the next
// Append continues the sequence after the last recovered record. A
// torn tail in the last segment is truncated; structural corruption is
// handled per Options.Strict.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegment
	}
	if opts.BatchEvery <= 0 {
		opts.BatchEvery = defaultBatch
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir:          dir,
		opts:         opts,
		fs:           fs,
		recordsTotal: opts.Reg.Counter("wal_records_total"),
		fsyncSec:     opts.Reg.Histogram("wal_fsync_seconds", fsyncBuckets),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// recover scans every segment, truncates a torn tail and opens the
// last segment for append.
func (l *Log) recover() error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	l.info.Segments = len(segs)
	if len(segs) == 0 {
		l.nextSeq = firstSeq
		return l.startSegment(firstSeq)
	}
	expect := segs[0].seq
	for i, seg := range segs {
		data, err := l.fs.ReadFile(l.path(seg.name))
		if err != nil {
			return fmt.Errorf("wal: read segment %s: %w", seg.name, err)
		}
		if len(data) > 0 && seg.seq != expect {
			return &CorruptRecordError{Segment: seg.name, Offset: 0, Seq: expect,
				Reason: fmt.Sprintf("segment named for seq %d but expected %d", seg.seq, expect)}
		}
		recs, off, scanErr := scan(data, expect)
		if cerr, ok := scanErr.(*CorruptRecordError); ok {
			cerr.Segment = seg.name
		}
		last := i == len(segs)-1
		switch {
		case scanErr == nil && off == int64(len(data)):
			// clean segment
		case !last:
			// A torn or corrupt record anywhere but the last segment
			// orphans everything after it; refuse to guess.
			if scanErr == nil {
				scanErr = &CorruptRecordError{Segment: seg.name, Offset: off, Seq: expect + uint64(len(recs)),
					Reason: "partial frame in non-final segment"}
			}
			return scanErr
		case scanErr != nil && l.opts.Strict:
			return scanErr
		default:
			// Torn tail (or non-strict corruption) in the last segment:
			// truncate at the first bad frame and carry on from there.
			if err := l.fs.Truncate(l.path(seg.name), off); err != nil {
				return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, err)
			}
			l.info.Truncated = true
			l.info.TruncatedSegment = seg.name
			l.info.TruncatedAt = off
			if cerr, ok := scanErr.(*CorruptRecordError); ok {
				l.info.Corrupt = cerr
			}
			data = data[:off]
		}
		l.recovered = append(l.recovered, recs...)
		expect += uint64(len(recs))
		if last {
			l.curName = seg.name
			l.curSize = int64(len(data))
		}
	}
	l.info.Records = len(l.recovered)
	l.nextSeq = expect
	l.syncedSeq = expect - 1
	f, err := l.fs.OpenAppend(l.path(l.curName))
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", l.curName, err)
	}
	l.cur = f
	return nil
}

// segment is a parsed segment file name.
type segment struct {
	name string
	seq  uint64 // seq of the first record the segment holds
}

func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }

func (l *Log) path(name string) string { return l.dir + "/" + name }

// segments lists the segment files in dir, sorted by first-record seq.
func (l *Log) segments() ([]segment, error) {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list dir: %w", err)
	}
	var segs []segment
	for _, n := range names {
		if !strings.HasPrefix(n, segPrefix) || !strings.HasSuffix(n, segSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(n, segPrefix), segSuffix)
		var seq uint64
		if _, err := fmt.Sscanf(hexpart, "%016x", &seq); err != nil || len(hexpart) != 16 {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{name: n, seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// startSegment creates a fresh segment whose first record will be seq.
func (l *Log) startSegment(seq uint64) error {
	name := segName(seq)
	f, err := l.fs.Create(l.path(name))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.cur = f
	l.curName = name
	l.curSize = 0
	return nil
}

// Records returns the records recovered by Open in sequence order.
// The caller must not mutate them.
func (l *Log) Records() []Record { return l.recovered }

// Info returns what Open found on disk.
func (l *Log) Info() RecoveryInfo { return l.info }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Policy returns the fsync policy the log runs under.
func (l *Log) Policy() SyncPolicy { return l.opts.Policy }

// AppendRecord encodes one frame onto dst and returns the extended
// slice. Exposed for tests and fuzz corpora that build log images
// without a Log.
func AppendRecord(dst []byte, r Record) []byte {
	payload := make([]byte, recHeaderLen+len(r.Payload))
	payload[0] = r.Type
	binary.LittleEndian.PutUint64(payload[1:recHeaderLen], r.Seq)
	copy(payload[recHeaderLen:], r.Payload)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append logs one record and returns its sequence number. Under
// SyncAlways a nil return means the record is on stable storage; under
// SyncBatch it is durable once a group commit covers it (SyncedSeq
// reports the watermark). Any write or sync failure wedges the log —
// every later Append returns the same error — because a partial frame
// may now sit at the tail and only a recovery scan can re-establish
// where the good prefix ends.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload) > maxRecordLen-recHeaderLen {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.werr != nil {
		return 0, fmt.Errorf("wal: log wedged by earlier failure: %w", l.werr)
	}
	if l.curSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.werr = err
			return 0, err
		}
	}
	seq := l.nextSeq
	frame := AppendRecord(nil, Record{Type: typ, Seq: seq, Payload: payload})
	if _, err := l.cur.Write(frame); err != nil {
		l.werr = err
		return 0, fmt.Errorf("wal: append seq %d: %w", seq, err)
	}
	l.nextSeq++
	l.curSize += int64(len(frame))
	l.unsynced++
	l.recordsTotal.Inc()
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncBatch:
		if l.unsynced >= l.opts.BatchEvery {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// syncLocked fsyncs the active segment and advances the durable
// watermark. Callers hold l.mu.
func (l *Log) syncLocked() error {
	if l.unsynced == 0 && l.syncedSeq == l.nextSeq-1 {
		return nil
	}
	start := time.Now()
	if err := l.cur.Sync(); err != nil {
		l.werr = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncSec.Observe(time.Since(start).Seconds())
	l.syncedSeq = l.nextSeq - 1
	l.unsynced = 0
	return nil
}

// Sync forces all appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.werr != nil {
		return fmt.Errorf("wal: log wedged by earlier failure: %w", l.werr)
	}
	return l.syncLocked()
}

// LastSeq returns the sequence number of the last appended record
// (including recovered ones), 0 if none.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// SyncedSeq returns the durable watermark: the last sequence number
// known to be on stable storage.
func (l *Log) SyncedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncedSeq
}

// Rotate syncs and closes the active segment and starts a fresh one.
// Checkpointing rotates first so every segment at or below the
// snapshot seq becomes removable by TruncateBefore.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.werr != nil {
		return fmt.Errorf("wal: log wedged by earlier failure: %w", l.werr)
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.cur.Close(); err != nil {
		l.werr = err
		return fmt.Errorf("wal: close segment %s: %w", l.curName, err)
	}
	if err := l.startSegment(l.nextSeq); err != nil {
		l.werr = err
		return err
	}
	return nil
}

// TruncateBefore removes segments every record of which has sequence
// number below seq — the compaction step after a snapshot covering
// seqs < seq. The active segment is never removed.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s.name == l.curName || i+1 >= len(segs) {
			break
		}
		// Segment i holds seqs [s.seq, segs[i+1].seq): removable iff
		// its last record is below seq.
		if segs[i+1].seq > seq {
			break
		}
		if err := l.fs.Remove(l.path(s.name)); err != nil {
			return fmt.Errorf("wal: remove segment %s: %w", s.name, err)
		}
	}
	return l.fs.SyncDir(l.dir)
}

// Close syncs and closes the active segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.werr == nil {
		err = l.syncLocked()
	}
	if cerr := l.cur.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// scan walks the frames in data expecting the first record to carry
// seq expect. It returns the complete records, the offset of the first
// byte not consumed, and an error: nil when the remainder (if any) is
// a torn tail — a partial frame cut off by the end of data — or a
// *CorruptRecordError when the frame at the returned offset is
// structurally bad (CRC mismatch, implausible length, sequence
// discontinuity). scan never panics on arbitrary input.
func scan(data []byte, expect uint64) ([]Record, int64, error) {
	var recs []Record
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < frameHeaderLen {
			return recs, off, nil // torn: partial frame header
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n < recHeaderLen || n > maxRecordLen {
			return recs, off, &CorruptRecordError{Offset: off, Seq: expect,
				Reason: fmt.Sprintf("implausible record length %d", n)}
		}
		if uint32(len(rest)-frameHeaderLen) < n {
			return recs, off, nil // torn: payload cut off
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, &CorruptRecordError{Offset: off, Seq: expect,
				Reason: "crc mismatch"}
		}
		seq := binary.LittleEndian.Uint64(payload[1:recHeaderLen])
		if seq != expect {
			return recs, off, &CorruptRecordError{Offset: off, Seq: expect,
				Reason: fmt.Sprintf("sequence discontinuity: record carries seq %d", seq)}
		}
		recs = append(recs, Record{
			Type:    payload[0],
			Seq:     seq,
			Payload: append([]byte(nil), payload[recHeaderLen:]...),
		})
		expect++
		off += int64(frameHeaderLen) + int64(n)
	}
}

// Scan is the exported recovery scanner over a raw segment image,
// starting at sequence number expect. It underlies Open's per-segment
// recovery and is the surface FuzzWALReplay exercises: for any input
// it must return a clean prefix (possibly with a torn tail) or a
// *CorruptRecordError — never panic.
func Scan(data []byte, expect uint64) ([]Record, int64, error) {
	return scan(data, expect)
}
