package wal

import (
	"fmt"
	"testing"
)

// benchPayload is a typical update record: an op byte, a sequence,
// and a small encoded body.
var benchPayload = make([]byte, 64)

func benchAppend(b *testing.B, policy SyncPolicy) {
	l, err := Open(b.TempDir(), Options{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkAppend measures sustained append throughput per fsync
// policy on the real filesystem: always pays one fsync per record,
// batch group-commits every 64, never leaves durability to the OS.
func BenchmarkAppend(b *testing.B) {
	b.Run("always", func(b *testing.B) { benchAppend(b, SyncAlways) })
	b.Run("batch", func(b *testing.B) { benchAppend(b, SyncBatch) })
	b.Run("never", func(b *testing.B) { benchAppend(b, SyncNever) })
}

// BenchmarkRecovery measures Open over a log of n records — the
// crash-restart path. The acceptance floor is 100k records in under
// five seconds; ns/op here is the whole recovery.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{Policy: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := l.Append(1, benchPayload); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l2, err := Open(dir, Options{Policy: SyncNever})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(l2.Records()); got != n {
					b.Fatalf("recovered %d records, want %d", got, n)
				}
				if err := l2.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
