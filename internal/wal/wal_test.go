package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"semjoin/internal/obs"
)

// testPayload builds a deterministic payload for record i with a
// size that varies across records, so frames land on many distinct
// byte offsets.
func testPayload(i int) []byte {
	n := 1 + (i*7)%23
	p := make([]byte, n)
	for j := range p {
		p[j] = byte(i + j*13)
	}
	return p
}

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := l.Append(byte(i%3+1), testPayload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: got seq %d, want %d", i, seq, i+1)
		}
	}
}

func checkRecords(t *testing.T, recs []Record, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, i+1)
		}
		if r.Type != byte(i%3+1) {
			t.Fatalf("record %d: type %d, want %d", i, r.Type, i%3+1)
		}
		if !bytes.Equal(r.Payload, testPayload(i)) {
			t.Fatalf("record %d: payload mismatch", i)
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	if got := l.LastSeq(); got != 50 {
		t.Fatalf("LastSeq = %d, want 50", got)
	}
	if got := l.SyncedSeq(); got != 50 {
		t.Fatalf("SyncedSeq = %d, want 50 under SyncAlways", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkRecords(t, l2.Records(), 50)
	if l2.Info().Truncated {
		t.Fatal("clean log reported truncation")
	}
	// Appends continue the sequence.
	seq, err := l2.Append(9, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 51 {
		t.Fatalf("continued seq = %d, want 51", seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS()
	dir := "db"
	// Tiny segments: rotate every ~3 records.
	l, err := Open(dir, Options{SegmentBytes: 100, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 5 {
		t.Fatalf("expected several segments, got %v", names)
	}
	l2, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkRecords(t, l2.Records(), 40)
	if l2.Info().Segments != len(names) {
		t.Fatalf("Info.Segments = %d, want %d", l2.Info().Segments, len(names))
	}
}

func TestTruncateBeforeCompactsSegments(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("db", Options{SegmentBytes: 100, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	// Snapshot covered everything: rotate, then drop covered segments.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateBefore(l.LastSeq() + 1); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("expected 1 segment after compaction, got %v", names)
	}
	// The log still appends and recovers from the compacted baseline.
	appendN(t, l, 40, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open("db", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := l2.Records()
	if len(recs) != 5 || recs[0].Seq != 41 || recs[4].Seq != 45 {
		t.Fatalf("post-compaction recovery: got %d records, first seq %d", len(recs), recs[0].Seq)
	}
	if got := l2.LastSeq(); got != 45 {
		t.Fatalf("LastSeq = %d, want 45", got)
	}
}

func TestBatchPolicyWatermark(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("db", Options{Policy: SyncBatch, BatchEvery: 4, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	// 10 appends with a window of 4: group commits after 4 and 8.
	if got := l.SyncedSeq(); got != 8 {
		t.Fatalf("SyncedSeq = %d, want 8", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.SyncedSeq(); got != 10 {
		t.Fatalf("SyncedSeq after Sync = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Batch": SyncBatch, " never ": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if _, err := ParseSyncPolicy(got.String()); err != nil {
			t.Fatalf("String round-trip %v: %v", got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestCorruptMidSegmentStrict(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("db", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of an early record.
	if err := fs.CorruptByte("db/"+segName(1), frameHeaderLen+recHeaderLen, 0xff); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("db", Options{Strict: true, FS: fs}); err == nil {
		t.Fatal("strict open accepted corrupt record")
	} else {
		var cerr *CorruptRecordError
		if !errors.As(err, &cerr) {
			t.Fatalf("strict open: got %T (%v), want *CorruptRecordError", err, err)
		}
		if cerr.Offset != 0 || cerr.Seq != 1 {
			t.Fatalf("corrupt location = offset %d seq %d, want 0/1", cerr.Offset, cerr.Seq)
		}
	}
	// Non-strict: truncate at the corrupt record, keep the prefix (none
	// here) and stay writable.
	l2, err := Open("db", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.Records()) != 0 || !l2.Info().Truncated || l2.Info().Corrupt == nil {
		t.Fatalf("non-strict recovery: records=%d info=%+v", len(l2.Records()), l2.Info())
	}
	if _, err := l2.Append(1, []byte("x")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestCorruptNonFinalSegmentFailsOpen(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("db", Options{SegmentBytes: 100, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the FIRST segment: truncating there would orphan later
	// segments, so even non-strict open must refuse.
	if err := fs.CorruptByte("db/"+segName(1), frameHeaderLen, 0x55); err != nil {
		t.Fatal(err)
	}
	_, err = Open("db", Options{FS: fs})
	var cerr *CorruptRecordError
	if !errors.As(err, &cerr) {
		t.Fatalf("open over corrupt non-final segment: got %v, want *CorruptRecordError", err)
	}
}

func TestAppendAfterFailureWedges(t *testing.T) {
	fs := NewMemFS()
	ffs := &faultFS{FS: fs, writesUntilFail: -1, syncsUntilFail: -1}
	l, err := Open("db", Options{Policy: SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	ffs.writesUntilFail = 0 // next write fails half-way
	if _, err := l.Append(1, []byte("doomed")); err == nil {
		t.Fatal("append over failing write succeeded")
	}
	ffs.writesUntilFail = -1
	if _, err := l.Append(1, []byte("after")); err == nil {
		t.Fatal("wedged log accepted an append")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("wedged log accepted a sync")
	}
	l.Close()
	// Reopen over the same (uncrashed) bytes: the partial frame is a
	// torn tail; the acked prefix survives and the log is writable.
	l2, err := Open("db", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkRecords(t, l2.Records(), 3)
	if !l2.Info().Truncated {
		t.Fatal("torn tail not reported")
	}
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	l, err := Open("db", Options{Policy: SyncAlways, Reg: reg, FS: NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 7)
	if got := reg.Counter("wal_records_total").Value(); got != 7 {
		t.Fatalf("wal_records_total = %d, want 7", got)
	}
}

func TestScanRejectsOversizeLength(t *testing.T) {
	data := AppendRecord(nil, Record{Type: 1, Seq: 1, Payload: []byte("ok")})
	// Hand-craft a frame header with an absurd length.
	bad := append(append([]byte(nil), data...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	recs, off, err := Scan(bad, 1)
	var cerr *CorruptRecordError
	if !errors.As(err, &cerr) {
		t.Fatalf("Scan = %v, want *CorruptRecordError", err)
	}
	if len(recs) != 1 || off != int64(len(data)) {
		t.Fatalf("prefix: %d records, offset %d", len(recs), off)
	}
}

func TestScanSequenceDiscontinuity(t *testing.T) {
	data := AppendRecord(nil, Record{Type: 1, Seq: 1, Payload: []byte("a")})
	data = AppendRecord(data, Record{Type: 1, Seq: 7, Payload: []byte("b")}) // gap
	recs, _, err := Scan(data, 1)
	var cerr *CorruptRecordError
	if !errors.As(err, &cerr) || len(recs) != 1 {
		t.Fatalf("Scan = %d recs, %v; want 1 rec + CorruptRecordError", len(recs), err)
	}
	if cerr.Seq != 2 {
		t.Fatalf("expected seq in error = %d, want 2", cerr.Seq)
	}
}

// TestRandomizedAppendReopen interleaves appends, rotations, reopens
// and compactions under a seeded RNG and checks the surviving suffix
// is always contiguous and intact.
func TestRandomizedAppendReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fs := NewMemFS()
	l, err := Open("db", Options{Policy: SyncBatch, BatchEvery: 3, SegmentBytes: 200, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	payloads := map[uint64][]byte{}
	floor := uint64(1) // first seq that must still be recoverable
	for step := 0; step < 200; step++ {
		switch rng.Intn(10) {
		case 0: // reopen
			if err := l.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			l, err = Open("db", Options{Policy: SyncBatch, BatchEvery: 3, SegmentBytes: 200, FS: fs})
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
			recs := l.Records()
			if len(recs) > 0 && recs[0].Seq != floor {
				t.Fatalf("step %d: first recovered seq %d, want %d", step, recs[0].Seq, floor)
			}
			for _, r := range recs {
				if !bytes.Equal(r.Payload, payloads[r.Seq]) {
					t.Fatalf("step %d: payload mismatch at seq %d", step, r.Seq)
				}
			}
			if uint64(len(recs)) != l.LastSeq()-floor+1 {
				t.Fatalf("step %d: %d records, floor %d, last %d", step, len(recs), floor, l.LastSeq())
			}
		case 1: // checkpoint: rotate + compact
			if err := l.Rotate(); err != nil {
				t.Fatalf("step %d rotate: %v", step, err)
			}
			cut := l.LastSeq() + 1
			if err := l.TruncateBefore(cut); err != nil {
				t.Fatalf("step %d truncate: %v", step, err)
			}
			floor = cut
		default:
			p := []byte(fmt.Sprintf("step-%d-%d", step, rng.Intn(1000)))
			seq, err := l.Append(byte(rng.Intn(3)+1), p)
			if err != nil {
				t.Fatalf("step %d append: %v", step, err)
			}
			if seq != uint64(next+1) {
				t.Fatalf("step %d: seq %d, want %d", step, seq, next+1)
			}
			payloads[seq] = p
			next++
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
