package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_gl_hits_total").Add(2)
	r.Counter("core_gl_misses_total").Add(1)
	r.Histogram("gsql_query_seconds", nil).Observe(0.002)
	srv := httptest.NewServer(Handler(r, NewQueryLog(), NewTraceStore(8)))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"core_gl_hits_total 2",
		"core_gl_misses_total 1",
		"# TYPE gsql_query_seconds histogram",
		"gsql_query_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestQueriesEndpoint(t *testing.T) {
	l := NewQueryLog()
	l.SetSlowThreshold(5 * time.Millisecond)
	l.Record(QueryRecord{Query: "select 1", Duration: time.Millisecond, Rows: 1})
	l.Record(QueryRecord{Query: "select slow", Duration: 50 * time.Millisecond, Rows: 9})
	srv := httptest.NewServer(Handler(NewRegistry(), l, NewTraceStore(8)))
	defer srv.Close()

	code, body := get(t, srv, "/queries")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		SlowQueryMS int64 `json:"slow_query_ms"`
		Recent      []struct {
			Query string `json:"query"`
		} `json:"recent"`
		Slow []struct {
			Query      string  `json:"query"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if payload.SlowQueryMS != 5 {
		t.Fatalf("slow_query_ms = %d", payload.SlowQueryMS)
	}
	if len(payload.Recent) != 2 || len(payload.Slow) != 1 {
		t.Fatalf("recent=%d slow=%d", len(payload.Recent), len(payload.Slow))
	}
	if payload.Slow[0].Query != "select slow" || payload.Slow[0].DurationMS != 50 {
		t.Fatalf("slow entry = %+v", payload.Slow[0])
	}
}

// tracedStore builds a store with three finished traces of staggered
// durations and distinct ops for the filter tests.
func tracedStore() *TraceStore {
	ts := NewTraceStore(8)
	for i, spec := range []struct {
		id, op string
		dur    time.Duration
	}{
		{"t-fast", "select 1", time.Millisecond},
		{"t-mid", "select pid from product", 10 * time.Millisecond},
		{"t-slow", "select cid from customer l-join <Gp> product", 100 * time.Millisecond},
	} {
		tr := DefaultTracer.Start(spec.op, int64(i+1))
		tr.SetID(spec.id)
		tr.SetStart(time.Now().Add(-spec.dur))
		root := tr.StartSpan("request")
		root.StartChild("query").End()
		tr.Finish("ok")
		ts.Add(tr)
	}
	return ts
}

func TestTracesListEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), NewQueryLog(), tracedStore()))
	defer srv.Close()

	type listing struct {
		Count    int `json:"count"`
		Retained int `json:"retained"`
		Capacity int `json:"capacity"`
		Traces   []struct {
			TraceID    string  `json:"trace_id"`
			Op         string  `json:"op"`
			Status     string  `json:"status"`
			DurationMS float64 `json:"duration_ms"`
			Spans      int     `json:"spans"`
		} `json:"traces"`
	}
	fetch := func(path string) listing {
		t.Helper()
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, code, body)
		}
		var l listing
		if err := json.Unmarshal([]byte(body), &l); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", path, err, body)
		}
		return l
	}

	all := fetch("/traces")
	if all.Count != 3 || all.Retained != 3 || all.Capacity != 8 {
		t.Fatalf("listing header = %+v", all)
	}
	if all.Traces[0].TraceID != "t-slow" {
		t.Fatalf("newest-first order: first = %s", all.Traces[0].TraceID)
	}
	for _, tr := range all.Traces {
		if tr.Status != "ok" || tr.Spans == 0 {
			t.Fatalf("malformed summary %+v", tr)
		}
	}

	if slow := fetch("/traces?min_ms=50"); slow.Count != 1 || slow.Traces[0].TraceID != "t-slow" {
		t.Fatalf("min_ms filter: %+v", slow)
	}
	if byOp := fetch("/traces?op=customer"); byOp.Count != 1 || byOp.Traces[0].TraceID != "t-slow" {
		t.Fatalf("op filter: %+v", byOp)
	}
	if lim := fetch("/traces?limit=2"); lim.Count != 2 || lim.Retained != 3 {
		t.Fatalf("limit: %+v", lim)
	}
	if code, _ := get(t, srv, "/traces?min_ms=potato"); code != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d", code)
	}
}

func TestTraceDetailEndpointFormats(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), NewQueryLog(), tracedStore()))
	defer srv.Close()

	code, body := get(t, srv, "/traces/t-slow")
	if code != http.StatusOK {
		t.Fatalf("json detail: status %d", code)
	}
	var detail struct {
		TraceID string `json:"trace_id"`
		Root    *struct {
			Name string `json:"name"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if detail.TraceID != "t-slow" || detail.Root == nil || detail.Root.Name != "request" {
		t.Fatalf("detail = %+v", detail)
	}

	code, body = get(t, srv, "/traces/t-slow?format=chrome")
	if code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Fatalf("chrome format: %d %s", code, body)
	}
	code, body = get(t, srv, "/traces/t-slow?format=text")
	if code != http.StatusOK || !strings.Contains(body, "trace t-slow") {
		t.Fatalf("text format: %d %s", code, body)
	}
	if code, _ = get(t, srv, "/traces/t-slow?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("bad format: status %d", code)
	}
	code, body = get(t, srv, "/traces/nope")
	if code != http.StatusNotFound || !strings.Contains(body, "not found") {
		t.Fatalf("missing trace: %d %s", code, body)
	}
}

func TestQueriesEndpointStatusCounts(t *testing.T) {
	l := NewQueryLog()
	l.Record(QueryRecord{Query: "ok q", Duration: time.Millisecond, Rows: 1, TraceID: "id-1"})
	l.Record(QueryRecord{Query: "bad q", Err: "boom"})
	l.Record(QueryRecord{Query: "busy q", Status: "shed", TraceID: "id-3"})
	srv := httptest.NewServer(Handler(NewRegistry(), l, nil))
	defer srv.Close()

	code, body := get(t, srv, "/queries")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		Recent []struct {
			Query   string `json:"query"`
			Status  string `json:"status"`
			TraceID string `json:"trace_id"`
		} `json:"recent"`
		Counts map[string]int `json:"counts"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	want := map[string]string{"ok q": "ok", "bad q": "error", "busy q": "shed"}
	for _, r := range payload.Recent {
		if r.Status != want[r.Query] {
			t.Errorf("%q status = %q, want %q", r.Query, r.Status, want[r.Query])
		}
	}
	if payload.Counts["ok"] != 1 || payload.Counts["error"] != 1 || payload.Counts["shed"] != 1 {
		t.Fatalf("counts = %v", payload.Counts)
	}
	if payload.Recent[2].TraceID != "id-3" {
		t.Fatalf("shed record must carry its trace id: %+v", payload.Recent[2])
	}
}

func TestDebugMuxSurfaces(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(DebugMux(r, NewQueryLog(), NewTraceStore(8)))
	defer srv.Close()

	for path, want := range map[string]string{
		"/":            "/debug/pprof/",
		"/metrics":     "x_total 1",
		"/queries":     `"recent"`,
		"/debug/vars":  "semjoin_metrics",
		"/debug/pprof": "", // redirect or index both acceptable, just not 500
	} {
		code, body := get(t, srv, path)
		if code != http.StatusOK && code != http.StatusMovedPermanently {
			t.Errorf("%s: status %d", path, code)
		}
		if want != "" && !strings.Contains(body, want) {
			t.Errorf("%s missing %q:\n%s", path, want, body)
		}
	}
	// Building a second mux must not panic on duplicate expvar names.
	DebugMux(NewRegistry(), nil, nil)
}
