package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_gl_hits_total").Add(2)
	r.Counter("core_gl_misses_total").Add(1)
	r.Histogram("gsql_query_seconds", nil).Observe(0.002)
	srv := httptest.NewServer(Handler(r, NewQueryLog()))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"core_gl_hits_total 2",
		"core_gl_misses_total 1",
		"# TYPE gsql_query_seconds histogram",
		"gsql_query_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestQueriesEndpoint(t *testing.T) {
	l := NewQueryLog()
	l.SetSlowThreshold(5 * time.Millisecond)
	l.Record(QueryRecord{Query: "select 1", Duration: time.Millisecond, Rows: 1})
	l.Record(QueryRecord{Query: "select slow", Duration: 50 * time.Millisecond, Rows: 9})
	srv := httptest.NewServer(Handler(NewRegistry(), l))
	defer srv.Close()

	code, body := get(t, srv, "/queries")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		SlowQueryMS int64 `json:"slow_query_ms"`
		Recent      []struct {
			Query string `json:"query"`
		} `json:"recent"`
		Slow []struct {
			Query      string  `json:"query"`
			DurationMS float64 `json:"duration_ms"`
		} `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if payload.SlowQueryMS != 5 {
		t.Fatalf("slow_query_ms = %d", payload.SlowQueryMS)
	}
	if len(payload.Recent) != 2 || len(payload.Slow) != 1 {
		t.Fatalf("recent=%d slow=%d", len(payload.Recent), len(payload.Slow))
	}
	if payload.Slow[0].Query != "select slow" || payload.Slow[0].DurationMS != 50 {
		t.Fatalf("slow entry = %+v", payload.Slow[0])
	}
}

func TestDebugMuxSurfaces(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(DebugMux(r, NewQueryLog()))
	defer srv.Close()

	for path, want := range map[string]string{
		"/":            "/debug/pprof/",
		"/metrics":     "x_total 1",
		"/queries":     `"recent"`,
		"/debug/vars":  "semjoin_metrics",
		"/debug/pprof": "", // redirect or index both acceptable, just not 500
	} {
		code, body := get(t, srv, path)
		if code != http.StatusOK && code != http.StatusMovedPermanently {
			t.Errorf("%s: status %d", path, code)
		}
		if want != "" && !strings.Contains(body, want) {
			t.Errorf("%s missing %q:\n%s", path, want, body)
		}
	}
	// Building a second mux must not panic on duplicate expvar names.
	DebugMux(NewRegistry(), nil)
}
