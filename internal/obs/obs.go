// Package obs is the engine-wide observability substrate: atomic
// counters and gauges, lock-striped histograms with quantile
// estimation, per-query trace spans and a slow-query ring buffer —
// all on the standard library alone, so every layer of the engine can
// depend on it without pulling in anything.
//
// Recording is designed to be skippable: every method is safe on a
// nil receiver and does nothing, so call sites write
//
//	obs.FromContext(ctx).Counter("core_gl_hits_total").Inc()
//
// unconditionally and pay only a context lookup when no registry is
// installed. Metrics therefore stay out of the per-tuple hot path by
// construction — operators record aggregates at Open/Close boundaries,
// not per Next.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value (no-op on a nil receiver).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (no-op on a nil receiver).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histStripes is the number of independently locked shards per
// histogram. Observations pick a stripe round-robin, so concurrent
// workers (the BFS fan-out, exchange sub-pipelines) rarely contend on
// one mutex.
const histStripes = 8

type histStripe struct {
	mu     sync.Mutex
	counts []uint64
	sum    float64
	n      uint64
}

// Histogram is a fixed-bucket lock-striped histogram. Bucket bounds
// are upper bounds in ascending order with an implicit +Inf bucket
// appended; quantiles are estimated by linear interpolation inside
// the bucket containing the target rank.
type Histogram struct {
	bounds  []float64
	next    atomic.Uint32
	stripes [histStripes]histStripe
}

// Observe records one sample (no-op on a nil receiver).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := &h.stripes[h.next.Add(1)%histStripes]
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make([]uint64, len(h.bounds)+1)
	}
	s.counts[bucketIdx(h.bounds, v)]++
	s.sum += v
	s.n++
	s.mu.Unlock()
}

func bucketIdx(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HistSnapshot is a merged point-in-time view of a histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implied after the last
	Counts []uint64  // len(Bounds)+1, non-cumulative
	Sum    float64
	Count  uint64
}

// Snapshot merges the stripes (empty snapshot on a nil receiver).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	out := HistSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.bounds)+1)}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		for j, c := range s.counts {
			out.Counts[j] += c
		}
		out.Sum += s.sum
		out.Count += s.n
		s.mu.Unlock()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// samples, interpolating linearly within the bucket that holds the
// target rank. Samples in the +Inf bucket report the last finite
// bound. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if float64(cum+c) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// expBuckets returns n exponential upper bounds start, start*factor, ...
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets spans 1µs to ~8s doubling — the default for latency
// histograms (seconds).
var TimeBuckets = expBuckets(1e-6, 2, 24)

// SizeBuckets spans 1 to ~1M doubling — for cardinalities like BFS
// reach-set sizes or worker counts.
var SizeBuckets = expBuckets(1, 2, 21)

// Registry holds named metrics. Series are identified by a family
// name plus optional label pairs; the same (family, labels) always
// returns the same metric, so call sites need no caching. All methods
// are goroutine-safe and no-ops on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]string // family name -> counter|gauge|histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		families: map[string]string{},
	}
}

// Default is the process-wide registry: the engine and the debug
// endpoint use it unless a session installs its own.
var Default = NewRegistry()

// seriesKey renders family plus "k1, v1, k2, v2, ..." label pairs into
// the canonical series id, e.g. `rel_op_rows_total{op="scan"}`.
func seriesKey(family string, labels []string) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter series for family
// and label pairs. Nil receiver returns nil (whose methods no-op).
func (r *Registry) Counter(family string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.families[family] = "counter"
	}
	return c
}

// Gauge returns (creating if needed) the gauge series for family and
// label pairs. Nil receiver returns nil.
func (r *Registry) Gauge(family string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.families[family] = "gauge"
	}
	return g
}

// Histogram returns (creating if needed) the histogram series for
// family and label pairs; buckets applies on first creation only (nil
// means TimeBuckets). Nil receiver returns nil.
func (r *Registry) Histogram(family string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		if buckets == nil {
			buckets = TimeBuckets
		}
		h = &Histogram{bounds: buckets}
		r.hists[key] = h
		r.families[family] = "histogram"
	}
	return h
}

// CounterValues returns every counter series value keyed by series id
// — the flat view the differential metrics-parity test compares.
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// Snapshot flattens the whole registry into name -> value: counters
// and gauges directly, histograms exploded into _count, _sum, _p50,
// _p95 and _p99 pseudo-series. SHOW METRICS and the expvar export
// render this map.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(counters)+len(gauges)+5*len(hists))
	for k, c := range counters {
		out[k] = float64(c.Value())
	}
	for k, g := range gauges {
		out[k] = float64(g.Value())
	}
	for k, h := range hists {
		s := h.Snapshot()
		out[k+"_count"] = float64(s.Count)
		out[k+"_sum"] = s.Sum
		out[k+"_p50"] = s.Quantile(0.50)
		out[k+"_p95"] = s.Quantile(0.95)
		out[k+"_p99"] = s.Quantile(0.99)
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (one # TYPE line per family, series sorted).
func (r *Registry) WritePrometheus(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type series struct{ key, val string }
	byFamily := map[string][]series{}
	for k, c := range r.counters {
		f := familyOf(k)
		byFamily[f] = append(byFamily[f], series{k, strconv.FormatInt(c.Value(), 10)})
	}
	for k, g := range r.gauges {
		f := familyOf(k)
		byFamily[f] = append(byFamily[f], series{k, strconv.FormatInt(g.Value(), 10)})
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	families := make([]string, 0, len(r.families))
	types := make(map[string]string, len(r.families))
	for f, t := range r.families {
		families = append(families, f)
		types[f] = t
	}
	r.mu.Unlock()

	sort.Strings(families)
	for _, f := range families {
		fmt.Fprintf(b, "# TYPE %s %s\n", f, types[f])
		if types[f] == "histogram" {
			keys := make([]string, 0)
			for k := range hists {
				if familyOf(k) == f {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				writeHistSeries(b, f, k, hists[k].Snapshot())
			}
			continue
		}
		ss := byFamily[f]
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		for _, s := range ss {
			fmt.Fprintf(b, "%s %s\n", s.key, s.val)
		}
	}
}

// familyOf strips the label suffix from a series id.
func familyOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// writeHistSeries renders one histogram series: cumulative _bucket
// lines, then _sum and _count, preserving any series labels.
func writeHistSeries(b *strings.Builder, family, key string, s HistSnapshot) {
	labels := ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		labels = strings.TrimSuffix(key[i+1:], "}")
	}
	withLE := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`%s_bucket{le="%s"}`, family, le)
		}
		return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, family, labels, le)
	}
	suffix := func(sfx string) string {
		if labels == "" {
			return family + sfx
		}
		return family + sfx + "{" + labels + "}"
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
		}
		fmt.Fprintf(b, "%s %d\n", withLE(le), cum)
	}
	fmt.Fprintf(b, "%s %s\n", suffix("_sum"), strconv.FormatFloat(s.Sum, 'g', -1, 64))
	fmt.Fprintf(b, "%s %d\n", suffix("_count"), s.Count)
}

// PrometheusText renders the registry as a string (see WritePrometheus).
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}
