package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("q_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("entries")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("entries").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Labelled series are distinct from the bare family and from each
	// other, but stable per label set.
	r.Counter("rows", "op", "scan").Add(10)
	r.Counter("rows", "op", "select").Add(3)
	if r.Counter("rows", "op", "scan").Value() != 10 || r.Counter("rows", "op", "select").Value() != 3 {
		t.Fatal("labelled counters not independent")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if r.Snapshot() != nil || r.CounterValues() != nil {
		t.Fatal("nil registry snapshots should be nil")
	}
	if r.PrometheusText() != "" {
		t.Fatal("nil registry should render empty")
	}
	var l *QueryLog
	if l.Record(QueryRecord{}) || l.Recent() != nil || l.Slow() != nil {
		t.Fatal("nil query log should no-op")
	}
	var s *Span
	s.StartChild("a").End()
	s.End()
	if s.String() != "" {
		t.Fatal("nil span should render empty")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext without registry should be nil")
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	if FromContext(ctx) != r {
		t.Fatal("registry did not round-trip through context")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", SizeBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-500500) > 1e-6 {
		t.Fatalf("sum = %f", s.Sum)
	}
	// Bucketed quantiles are approximate; doubling buckets bound the
	// error by 2x.
	p50 := s.Quantile(0.50)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %f out of range", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %f < p50 %f", p99, p50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("core_gl_hits_total").Add(3)
	r.Counter("rel_op_rows_total", "op", "scan").Add(12)
	r.Gauge("core_gl_entries").Set(2)
	r.Histogram("gsql_query_seconds", nil).Observe(0.01)
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE core_gl_hits_total counter\ncore_gl_hits_total 3\n",
		"# TYPE rel_op_rows_total counter\nrel_op_rows_total{op=\"scan\"} 12\n",
		"# TYPE core_gl_entries gauge\ncore_gl_entries 2\n",
		"# TYPE gsql_query_seconds histogram\n",
		"gsql_query_seconds_count 1\n",
		`gsql_query_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Cumulative bucket counts must be monotone and end at count.
	if !strings.Contains(text, "gsql_query_seconds_sum 0.01") {
		t.Errorf("histogram sum missing:\n%s", text)
	}
}

func TestHistogramLabelsExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("core_rext_phase_seconds", nil, "phase", "selection").Observe(0.5)
	text := r.PrometheusText()
	if !strings.Contains(text, `core_rext_phase_seconds_bucket{phase="selection",le="+Inf"} 1`) {
		t.Fatalf("labelled histogram bucket missing:\n%s", text)
	}
	if !strings.Contains(text, `core_rext_phase_seconds_count{phase="selection"} 1`) {
		t.Fatalf("labelled histogram count missing:\n%s", text)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	p := root.StartChild("parse")
	p.End()
	e := root.StartChild("execute")
	e.Note = "workers=2"
	e.End()
	root.End()
	if root.Duration <= 0 {
		t.Fatal("root duration not set")
	}
	var names []string
	var depths []int
	root.Walk(func(s *Span, d int) { names = append(names, s.Name); depths = append(depths, d) })
	if strings.Join(names, ",") != "query,parse,execute" {
		t.Fatalf("walk order = %v", names)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 1 {
		t.Fatalf("depths = %v", depths)
	}
	text := root.String()
	if !strings.Contains(text, "  execute [workers=2]  time=") {
		t.Fatalf("render = %q", text)
	}
	// End is idempotent.
	d := root.Duration
	root.End()
	if root.Duration != d {
		t.Fatal("second End changed duration")
	}
}

func TestQueryLogRings(t *testing.T) {
	l := NewQueryLog()
	if l.Record(QueryRecord{Query: "q", Duration: time.Hour}) {
		t.Fatal("zero threshold should never classify slow")
	}
	l.SetSlowThreshold(10 * time.Millisecond)
	for i := 0; i < recentRingCap+10; i++ {
		dur := time.Millisecond
		if i%2 == 0 {
			dur = 20 * time.Millisecond
		}
		l.Record(QueryRecord{Query: "q", Duration: dur})
	}
	if got := len(l.Recent()); got != recentRingCap {
		t.Fatalf("recent len = %d, want %d", got, recentRingCap)
	}
	if got := len(l.Slow()); got != slowRingCap {
		t.Fatalf("slow len = %d, want %d", got, slowRingCap)
	}
	for _, rec := range l.Slow() {
		if rec.Duration < 10*time.Millisecond {
			t.Fatalf("fast query in slow ring: %v", rec.Duration)
		}
	}
}

func TestSnapshotExplodesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", nil).Observe(0.5)
	snap := r.Snapshot()
	for _, k := range []string{"lat_count", "lat_sum", "lat_p50", "lat_p95", "lat_p99"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("snapshot missing %s: %v", k, snap)
		}
	}
	if snap["lat_count"] != 1 {
		t.Fatalf("lat_count = %v", snap["lat_count"])
	}
}
