package obs

import "context"

type ctxKey struct{}

// WithRegistry installs r as the registry recording sites below ctx
// report to. Operators and caches read it back with FromContext, so a
// whole query's metrics can be redirected (or disabled by never
// installing one) without any global state.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the registry installed by WithRegistry, or nil
// when none is (recording through a nil registry is a no-op). A nil
// ctx is tolerated and yields nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

type traceCtxKey struct{}

// ContextWithTrace installs the active trace below ctx so execution
// phases deep in the engine (HER matching, BFS reachability, gL cache
// fills, RExt extraction) can attribute their timings to the query
// that triggered them via TraceFromContext(ctx).Phase(...).
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace installed by ContextWithTrace,
// or nil when none is (every Trace method no-ops on nil, so call
// sites never guard). A nil ctx is tolerated and yields nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

type loggerCtxKey struct{}

// ContextWithLogger installs a structured logger (usually pre-bound
// with session/trace fields) below ctx.
func ContextWithLogger(ctx context.Context, l *Logger) context.Context {
	return context.WithValue(ctx, loggerCtxKey{}, l)
}

// LoggerFromContext returns the logger installed by ContextWithLogger,
// or nil when none is (logging through a nil Logger is a no-op). A
// nil ctx is tolerated and yields nil.
func LoggerFromContext(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(loggerCtxKey{}).(*Logger)
	return l
}
