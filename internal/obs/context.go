package obs

import "context"

type ctxKey struct{}

// WithRegistry installs r as the registry recording sites below ctx
// report to. Operators and caches read it back with FromContext, so a
// whole query's metrics can be redirected (or disabled by never
// installing one) without any global state.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the registry installed by WithRegistry, or nil
// when none is (recording through a nil registry is a no-op). A nil
// ctx is tolerated and yields nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}
