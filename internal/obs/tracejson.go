package obs

import (
	"encoding/json"
	"time"
)

// spanJSON is the JSON rendering of one span in a trace tree. Span
// ids are assigned during rendering (depth-first pre-order, root = 1)
// and each child links to its parent — flat consumers can rebuild the
// tree from the id pairs, nested consumers use Children directly.
type spanJSON struct {
	SpanID     int64      `json:"span_id"`
	ParentID   int64      `json:"parent_span_id,omitempty"`
	Name       string     `json:"name"`
	Note       string     `json:"note,omitempty"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Children   []spanJSON `json:"children,omitempty"`
}

// traceJSON is the JSON rendering of a full trace (/traces/<id>).
type traceJSON struct {
	TraceID    string    `json:"trace_id"`
	Session    int64     `json:"session,omitempty"`
	Op         string    `json:"op"`
	Status     string    `json:"status"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Root       *spanJSON `json:"root,omitempty"`
}

// traceSummaryJSON is one row of the /traces listing.
type traceSummaryJSON struct {
	TraceID    string    `json:"trace_id"`
	Session    int64     `json:"session,omitempty"`
	Op         string    `json:"op"`
	Status     string    `json:"status"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func spanToJSON(s *Span, parentID int64, nextID *int64) *spanJSON {
	if s == nil {
		return nil
	}
	*nextID++
	out := &spanJSON{
		SpanID:     *nextID,
		ParentID:   parentID,
		Name:       s.Name,
		Note:       s.Note,
		Start:      s.Start,
		DurationMS: durMS(s.Duration),
	}
	for _, c := range s.Children {
		if cj := spanToJSON(c, out.SpanID, nextID); cj != nil {
			out.Children = append(out.Children, *cj)
		}
	}
	return out
}

// TraceJSON renders the trace (with phases and operators grafted in)
// as the /traces/<id> JSON document.
func TraceJSON(t *Trace) []byte {
	if t == nil {
		return []byte("null")
	}
	var nextID int64
	doc := traceJSON{
		TraceID:    t.ID(),
		Session:    t.Session(),
		Op:         t.Op(),
		Status:     t.Status(),
		Start:      t.Start(),
		DurationMS: durMS(t.Duration()),
		Spans:      t.SpanCount(),
		Root:       spanToJSON(t.RenderRoot(), 0, &nextID),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return []byte("null")
	}
	return b
}

// chromeEvent is one complete ("X" phase) event in the Chrome
// trace_event format — load the output of TraceChromeJSON into
// chrome://tracing or Perfetto to see the query on a timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// TraceChromeJSON renders the trace in Chrome trace_event format.
// Timestamps are microseconds relative to the trace start; the
// session id becomes the thread id so traces from several sessions
// can be merged onto one timeline.
func TraceChromeJSON(t *Trace) []byte {
	if t == nil {
		return []byte(`{"traceEvents":[]}`)
	}
	base := t.Start()
	tid := t.Session()
	var events []chromeEvent
	t.RenderRoot().Walk(func(sp *Span, _ int) {
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			TS:   float64(sp.Start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
		}
		if ev.TS < 0 {
			ev.TS = 0
		}
		if sp.Note != "" {
			ev.Args = map[string]any{"note": sp.Note}
		}
		events = append(events, ev)
	})
	doc := chromeDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"trace_id": t.ID(),
			"op":       t.Op(),
			"status":   t.Status(),
		},
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return []byte(`{"traceEvents":[]}`)
	}
	return b
}

// TraceText renders the trace as an indented human-readable tree
// (the same shape Span.String uses), headed by the trace identity.
func TraceText(t *Trace) string {
	if t == nil {
		return ""
	}
	head := "trace " + t.ID() + "  status=" + t.Status() +
		"  duration=" + t.Duration().Round(time.Microsecond).String() + "\n"
	return head + t.RenderRoot().String()
}

func traceSummary(t *Trace) traceSummaryJSON {
	return traceSummaryJSON{
		TraceID:    t.ID(),
		Session:    t.Session(),
		Op:         t.Op(),
		Status:     t.Status(),
		Start:      t.Start(),
		DurationMS: durMS(t.Duration()),
		Spans:      t.SpanCount(),
	}
}
