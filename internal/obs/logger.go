package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logger is a thin nil-safe wrapper over log/slog emitting one JSON
// object per line. The wrapper exists for two reasons: every method
// no-ops on a nil receiver (the same doctrine as the rest of obs, so
// call sites never guard), and With returns the same type so loggers
// pre-bound with session/trace fields thread through server → engine
// → core without each layer knowing about slog. Construct with
// NewLogger (enforced by the obsnil analyzer).
//
// Field conventions: "session" (int64 session id), "trace_id"
// (16-hex trace id), "query" (statement text, truncated), "reason"
// (admission shed reason), "err" (error text), "duration_ms"
// (float64 milliseconds).
type Logger struct {
	s *slog.Logger
}

// NewLogger returns a logger writing JSON lines at or above level to
// w. A nil writer yields a functional but silent logger.
func NewLogger(w io.Writer, level slog.Level) *Logger {
	if w == nil {
		w = io.Discard
	}
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return &Logger{s: slog.New(h)}
}

// NopLogger returns a logger that discards everything — handy as an
// explicit "no logging" value where a typed nil would be confusing.
func NopLogger() *Logger { return &Logger{} }

// ParseLogLevel maps a -log-level flag value (debug, info, warn,
// error; case-insensitive) to a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// With returns a logger with the given alternating key/value fields
// bound to every record it emits.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || l.s == nil {
		return l
	}
	return &Logger{s: l.s.With(args...)}
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level slog.Level) bool {
	if l == nil || l.s == nil {
		return false
	}
	return l.s.Enabled(context.Background(), level)
}

// Debug emits a debug-level record.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Debug(msg, args...)
	}
}

// Info emits an info-level record.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Info(msg, args...)
	}
}

// Warn emits a warn-level record.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Warn(msg, args...)
	}
}

// Error emits an error-level record.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil && l.s != nil {
		l.s.Error(msg, args...)
	}
}
