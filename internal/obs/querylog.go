package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one executed query as the slow-query log sees it.
type QueryRecord struct {
	Query    string        `json:"query"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int           `json:"rows"`
	Err      string        `json:"err,omitempty"`
	// Status is the query outcome: "ok", "error" or "shed" (rejected
	// by admission control — such queries never reached the engine but
	// still belong in the log so /queries reconciles with
	// server_shed_total). Empty in records from writers predating the
	// field; readers treat that as "ok" unless Err is set.
	Status string `json:"status,omitempty"`
	// TraceID links the record to its retained trace, when one was
	// kept.
	TraceID string `json:"trace_id,omitempty"`
}

// EffectiveStatus normalizes Status for old writers: an explicit
// status wins, otherwise Err implies "error" and anything else "ok".
func (r QueryRecord) EffectiveStatus() string {
	if r.Status != "" {
		return r.Status
	}
	if r.Err != "" {
		return "error"
	}
	return "ok"
}

const (
	recentRingCap = 128
	slowRingCap   = 64
)

// QueryLog is a pair of fixed-size ring buffers over executed
// queries: every query lands in the recent ring, and queries at or
// above the slow threshold also land in the slow ring. A zero
// threshold disables slow classification. Safe for concurrent use;
// all methods no-op on a nil receiver.
type QueryLog struct {
	mu     sync.Mutex
	recent ring
	slow   ring
	slowNS atomic.Int64 // threshold in nanoseconds, 0 = disabled
}

// ring is a fixed-capacity append-only ring of query records.
type ring struct {
	buf  []QueryRecord
	next int
	full bool
}

func (r *ring) push(cap int, rec QueryRecord) {
	if r.buf == nil {
		r.buf = make([]QueryRecord, cap)
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// list returns the records oldest-first.
func (r *ring) list() []QueryRecord {
	if r.buf == nil {
		return nil
	}
	var out []QueryRecord
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// NewQueryLog returns an empty log with slow classification disabled.
func NewQueryLog() *QueryLog { return &QueryLog{} }

// DefaultQueries is the process-wide query log, the one the debug
// endpoint serves unless a session installs its own.
var DefaultQueries = NewQueryLog()

// SetSlowThreshold sets the duration at or above which a query counts
// as slow; 0 disables the slow ring.
func (l *QueryLog) SetSlowThreshold(d time.Duration) {
	if l != nil {
		l.slowNS.Store(int64(d))
	}
}

// SlowThreshold returns the current slow threshold (0 = disabled).
func (l *QueryLog) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.slowNS.Load())
}

// Record logs one executed query and reports whether it classified as
// slow.
func (l *QueryLog) Record(rec QueryRecord) (slow bool) {
	if l == nil {
		return false
	}
	thr := l.SlowThreshold()
	slow = thr > 0 && rec.Duration >= thr
	l.mu.Lock()
	l.recent.push(recentRingCap, rec)
	if slow {
		l.slow.push(slowRingCap, rec)
	}
	l.mu.Unlock()
	return slow
}

// Recent returns the retained recent queries, oldest first.
func (l *QueryLog) Recent() []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recent.list()
}

// Slow returns the retained slow queries, oldest first.
func (l *QueryLog) Slow() []QueryRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slow.list()
}
