package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// queriesPayload is the JSON shape of the /queries endpoint.
type queriesPayload struct {
	SlowQueryMS int64          `json:"slow_query_ms"`
	Recent      []queryJSON    `json:"recent"`
	Slow        []queryJSON    `json:"slow"`
	Counts      map[string]int `json:"counts"`
}

type queryJSON struct {
	Query      string    `json:"query"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Rows       int       `json:"rows"`
	Err        string    `json:"err,omitempty"`
}

func toJSON(recs []QueryRecord) []queryJSON {
	out := make([]queryJSON, len(recs))
	for i, r := range recs {
		out[i] = queryJSON{
			Query: r.Query, Start: r.Start,
			DurationMS: float64(r.Duration) / float64(time.Millisecond),
			Rows:       r.Rows, Err: r.Err,
		}
	}
	return out
}

// Handler serves the live introspection endpoints over r and l:
//
//	/metrics  Prometheus text exposition of every registered series
//	/queries  recent + slow queries as JSON
//
// Either argument may be nil; the corresponding endpoint then serves
// an empty document rather than failing.
func Handler(r *Registry, l *QueryLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.PrometheusText()))
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, _ *http.Request) {
		recent, slow := l.Recent(), l.Slow()
		payload := queriesPayload{
			SlowQueryMS: l.SlowThreshold().Milliseconds(),
			Recent:      toJSON(recent),
			Slow:        toJSON(slow),
			Counts:      map[string]int{"recent": len(recent), "slow": len(slow)},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	return mux
}

// publishOnce guards the expvar registration: expvar panics on
// duplicate names, and DebugMux may be built more than once in tests.
var publishOnce sync.Once

// DebugMux is the full debug surface for -debug-addr: Handler's
// /metrics and /queries, net/http/pprof under /debug/pprof/, and
// expvar under /debug/vars with the registry snapshot published as
// the "semjoin_metrics" var. The first call wires r into expvar;
// later calls reuse that registration.
func DebugMux(r *Registry, l *QueryLog) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("semjoin_metrics", expvar.Func(func() any { return r.Snapshot() }))
	})
	h := Handler(r, l)
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	mux.Handle("/queries", h)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><body><h1>semjoin debug</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/queries">/queries</a> (recent + slow queries)</li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`))
	})
	return mux
}
