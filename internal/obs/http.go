package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// queriesPayload is the JSON shape of the /queries endpoint.
type queriesPayload struct {
	SlowQueryMS int64          `json:"slow_query_ms"`
	Recent      []queryJSON    `json:"recent"`
	Slow        []queryJSON    `json:"slow"`
	Counts      map[string]int `json:"counts"`
}

type queryJSON struct {
	Query      string    `json:"query"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Rows       int       `json:"rows"`
	Status     string    `json:"status"`
	TraceID    string    `json:"trace_id,omitempty"`
	Err        string    `json:"err,omitempty"`
}

func toJSON(recs []QueryRecord) []queryJSON {
	out := make([]queryJSON, len(recs))
	for i, r := range recs {
		out[i] = queryJSON{
			Query: r.Query, Start: r.Start,
			DurationMS: float64(r.Duration) / float64(time.Millisecond),
			Rows:       r.Rows, Status: r.EffectiveStatus(),
			TraceID: r.TraceID, Err: r.Err,
		}
	}
	return out
}

// Handler serves the live introspection endpoints over r, l and ts:
//
//	/metrics       Prometheus text exposition of every registered series
//	/queries       recent + slow queries as JSON (counts broken down by status)
//	/traces        retained traces newest-first (?min_ms=, ?op=, ?limit=)
//	/traces/<id>   one trace (?format=json|chrome|text)
//
// Any argument may be nil; the corresponding endpoint then serves an
// empty document rather than failing.
func Handler(r *Registry, l *QueryLog, ts *TraceStore) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.PrometheusText()))
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, _ *http.Request) {
		recent, slow := l.Recent(), l.Slow()
		counts := map[string]int{"recent": len(recent), "slow": len(slow)}
		for _, rec := range recent {
			counts[rec.EffectiveStatus()]++
		}
		payload := queriesPayload{
			SlowQueryMS: l.SlowThreshold().Milliseconds(),
			Recent:      toJSON(recent),
			Slow:        toJSON(slow),
			Counts:      counts,
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		serveTraceList(w, req, ts)
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, req *http.Request) {
		serveTraceDetail(w, req, ts)
	})
	return mux
}

// tracesPayload is the JSON shape of the /traces listing.
type tracesPayload struct {
	Count    int                `json:"count"`
	Retained int                `json:"retained"`
	Capacity int                `json:"capacity"`
	Traces   []traceSummaryJSON `json:"traces"`
}

func serveTraceList(w http.ResponseWriter, req *http.Request, ts *TraceStore) {
	q := req.URL.Query()
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad min_ms: want a non-negative number of milliseconds", http.StatusBadRequest)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	opFilter := strings.ToLower(q.Get("op"))
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit: want a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	all := ts.List()
	summaries := []traceSummaryJSON{}
	for _, t := range all {
		if minDur > 0 && t.Duration() < minDur {
			continue
		}
		if opFilter != "" && !strings.Contains(strings.ToLower(t.Op()), opFilter) {
			continue
		}
		summaries = append(summaries, traceSummary(t))
		if limit > 0 && len(summaries) >= limit {
			break
		}
	}
	payload := tracesPayload{
		Count:    len(summaries),
		Retained: ts.Len(),
		Capacity: ts.Cap(),
		Traces:   summaries,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}

func serveTraceDetail(w http.ResponseWriter, req *http.Request, ts *TraceStore) {
	id := strings.TrimPrefix(req.URL.Path, "/traces/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, req)
		return
	}
	t := ts.Get(id)
	if t == nil {
		http.Error(w, "trace "+id+" not found (evicted or never kept — raise -trace-sample or use TRACE <query>)", http.StatusNotFound)
		return
	}
	switch format := req.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(TraceJSON(t))
		_, _ = w.Write([]byte("\n"))
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(TraceChromeJSON(t))
		_, _ = w.Write([]byte("\n"))
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(TraceText(t)))
	default:
		http.Error(w, "bad format "+format+": want json, chrome or text", http.StatusBadRequest)
	}
}

// publishOnce guards the expvar registration: expvar panics on
// duplicate names, and DebugMux may be built more than once in tests.
var publishOnce sync.Once

// DebugMux is the full debug surface for -debug-addr: Handler's
// /metrics, /queries and /traces, net/http/pprof under /debug/pprof/,
// and expvar under /debug/vars with the registry snapshot published
// as the "semjoin_metrics" var. The first call wires r into expvar;
// later calls reuse that registration.
func DebugMux(r *Registry, l *QueryLog, ts *TraceStore) *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("semjoin_metrics", expvar.Func(func() any { return r.Snapshot() }))
	})
	h := Handler(r, l, ts)
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	mux.Handle("/queries", h)
	mux.Handle("/traces", h)
	mux.Handle("/traces/", h)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><body><h1>semjoin debug</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/queries">/queries</a> (recent + slow queries)</li>
<li><a href="/traces">/traces</a> (retained query traces; /traces/&lt;id&gt;?format=json|chrome|text)</li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>`))
	})
	return mux
}
