package obs

import "sync"

// defaultTraceCap bounds DefaultTraces and any store constructed with
// a non-positive capacity.
const defaultTraceCap = 256

// TraceStore is a bounded ring buffer of finished traces: when full,
// adding a trace evicts the oldest one. Traces must be Finished (and
// thereafter immutable) before they are added; readers get them
// without copying. Safe for concurrent use; all methods no-op on a
// nil receiver. Construct with NewTraceStore.
type TraceStore struct {
	mu   sync.Mutex
	cap  int
	buf  []*Trace
	next int
	full bool
	byID map[string]*Trace
}

// NewTraceStore returns an empty store retaining at most capacity
// traces (<= 0 selects the default of 256).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &TraceStore{cap: capacity}
}

// DefaultTraces is the process-wide trace store, the one the debug
// endpoint serves unless a server installs its own.
var DefaultTraces = NewTraceStore(defaultTraceCap)

// Add retains a finished trace, evicting the oldest when at capacity.
func (s *TraceStore) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf == nil {
		if s.cap <= 0 {
			s.cap = defaultTraceCap
		}
		s.buf = make([]*Trace, s.cap)
		s.byID = make(map[string]*Trace, s.cap)
	}
	if old := s.buf[s.next]; old != nil {
		delete(s.byID, old.ID())
	}
	s.buf[s.next] = t
	s.byID[t.ID()] = t
	s.next = (s.next + 1) % len(s.buf)
	if s.next == 0 {
		s.full = true
	}
}

// Get returns the retained trace with the given id, or nil.
func (s *TraceStore) Get(id string) *Trace {
	if s == nil || id == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// List returns the retained traces newest-first.
func (s *TraceStore) List() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buf == nil {
		return nil
	}
	var out []*Trace
	for i := s.next - 1; i >= 0; i-- {
		out = append(out, s.buf[i])
	}
	if s.full {
		for i := len(s.buf) - 1; i >= s.next; i-- {
			out = append(out, s.buf[i])
		}
	}
	return out
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Cap returns the store capacity.
func (s *TraceStore) Cap() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap
}
