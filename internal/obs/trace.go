package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed region of a query trace. Spans form a tree: the
// engine opens a root span per query with parse/plan/execute children,
// and EXPLAIN ANALYZE grafts the operator tree under the execute span.
// A span tree is built and read by one goroutine (the session driving
// the query); it is not goroutine-safe.
type Span struct {
	Name     string
	Note     string
	Start    time.Time
	Duration time.Duration
	Children []*Span
}

// StartSpan begins a new root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild begins a child span (nil-safe: returns nil on a nil
// receiver so dependent Ends stay no-ops).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Record appends an already-completed child span — used when the
// duration was measured before a span tree existed (the server times
// the wire read before it knows whether the request opens a trace).
// Nil-safe like StartChild.
func (s *Span) Record(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, Duration: d}
	s.Children = append(s.Children, c)
	return c
}

// End freezes the span's duration; repeated Ends keep the first.
func (s *Span) End() {
	if s != nil && s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
}

// Walk visits the span tree depth-first pre-order with each span's
// depth (root = 0).
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
}

// String renders the tree one span per line, indented by depth, in
// the same "label  time=..." shape PlanLine uses so EXPLAIN ANALYZE
// output reads uniformly.
func (s *Span) String() string {
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		label := sp.Name
		if sp.Note != "" {
			label += " [" + sp.Note + "]"
		}
		fmt.Fprintf(&b, "%s%s  time=%s\n",
			strings.Repeat("  ", depth), label, sp.Duration.Round(time.Microsecond))
	})
	return b.String()
}
