package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex digits", id)
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("id %q: non-hex rune %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTracerKeepPolicy(t *testing.T) {
	finish := func(tr *Tracer, force bool) *Trace {
		tc := tr.Start("q", 1)
		if force {
			tc.SetForced()
		}
		tc.Finish("ok")
		return tc
	}

	always := NewTracer(1.0, 0)
	if !always.Keep(finish(always, false)) {
		t.Error("rate 1.0 must keep everything")
	}
	never := NewTracer(0, 0)
	if never.Keep(finish(never, false)) {
		t.Error("rate 0 must keep nothing unforced")
	}
	if !never.Keep(finish(never, true)) {
		t.Error("forced traces bypass rate 0")
	}

	// Slow override: rebase the start so the frozen duration clears the
	// threshold.
	slow := NewTracer(0, 50*time.Millisecond)
	tc := slow.Start("q", 1)
	tc.SetStart(time.Now().Add(-time.Second))
	tc.Finish("ok")
	if !slow.Keep(tc) {
		t.Error("trace slower than SlowAlways must be kept at rate 0")
	}

	// Probabilistic keep: at rate 0.25 over 4000 coin flips the keep
	// count concentrates tightly around 1000; a [700, 1300] window is
	// ~11 standard deviations wide.
	prob := NewTracer(0.25, 0)
	kept := 0
	for i := 0; i < 4000; i++ {
		if prob.Keep(finish(prob, false)) {
			kept++
		}
	}
	if kept < 700 || kept > 1300 {
		t.Errorf("rate 0.25: kept %d of 4000, outside [700,1300]", kept)
	}

	var nilTracer *Tracer
	if nilTracer.Start("q", 1) != nil {
		t.Error("nil tracer must start nil traces")
	}
	if nilTracer.Keep(finish(always, true)) {
		t.Error("nil tracer keeps nothing")
	}
}

func TestTracerClampsRate(t *testing.T) {
	if r := NewTracer(-3, 0).Rate(); r != 0 {
		t.Errorf("rate clamped low: got %v", r)
	}
	if r := NewTracer(7, 0).Rate(); r != 1 {
		t.Errorf("rate clamped high: got %v", r)
	}
}

func TestTraceSetIDForcesKeep(t *testing.T) {
	tr := NewTracer(0, 0)
	tc := tr.Start("q", 1)
	tc.SetID("client-chosen-id")
	tc.Finish("ok")
	if tc.ID() != "client-chosen-id" {
		t.Fatalf("id = %q", tc.ID())
	}
	if !tr.Keep(tc) {
		t.Error("client-named trace must be kept regardless of rate")
	}
}

func TestTraceRenderTreeGraftsPhasesAndOps(t *testing.T) {
	tc := DefaultTracer.Start("select 1", 7)
	root := tc.StartSpan("query")
	exec := root.StartChild("execute")
	tc.Phase("her_match", time.Now().Add(-time.Millisecond))
	tc.SetOperators([]OpNode{
		{Depth: 0, Name: "project", Rows: 10, Batches: 2},
		{Depth: 1, Name: "scan product", Rows: 13, Workers: 4},
	})
	exec.End()
	tc.Finish("ok")

	rendered := tc.RenderRoot().String()
	for _, want := range []string{
		"phase:her_match",
		"op:project [rows=10 batches=2]",
		"op:scan product [rows=13 workers=4]",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, rendered)
		}
	}
	// The op spans must nest by plan depth: scan indented under project.
	proj := strings.Index(rendered, "op:project")
	scan := strings.Index(rendered, "op:scan")
	if proj < 0 || scan < proj {
		t.Fatalf("operator order wrong:\n%s", rendered)
	}

	// Rendering must not mutate the live tree — EXPLAIN ANALYZE walks
	// it and would double-print grafted spans.
	liveSpans := 0
	tc.Root.Walk(func(*Span, int) { liveSpans++ })
	if liveSpans != 2 {
		t.Fatalf("live tree has %d spans after render, want 2 (query, execute)", liveSpans)
	}
}

func TestTracePhaseConcurrent(t *testing.T) {
	tc := DefaultTracer.Start("q", 1)
	tc.StartSpan("query")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tc.Phase(fmt.Sprintf("worker%d", i), time.Now())
			}
		}(i)
	}
	wg.Wait()
	tc.Finish("ok")
	if got := len(tc.Phases()); got != 400 {
		t.Fatalf("phases recorded = %d, want 400", got)
	}
}

func TestTraceStoreEvictsOldestFirst(t *testing.T) {
	s := NewTraceStore(3)
	mk := func(id string) *Trace {
		tc := DefaultTracer.Start("q "+id, 0)
		tc.SetID(id)
		tc.Finish("ok")
		return tc
	}
	for _, id := range []string{"a", "b", "c"} {
		s.Add(mk(id))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Add(mk("d")) // evicts "a", the oldest
	if s.Len() != 3 {
		t.Fatalf("len after eviction = %d", s.Len())
	}
	if s.Get("a") != nil {
		t.Error("oldest trace a still retrievable after eviction")
	}
	for _, id := range []string{"b", "c", "d"} {
		if s.Get(id) == nil {
			t.Errorf("trace %s missing", id)
		}
	}
	var ids []string
	for _, tr := range s.List() {
		ids = append(ids, tr.ID())
	}
	if strings.Join(ids, ",") != "d,c,b" {
		t.Fatalf("List order = %v, want newest-first [d c b]", ids)
	}

	s.Add(mk("e")) // evicts "b"
	if s.Get("b") != nil || s.Get("c") == nil {
		t.Error("second eviction must remove b, keep c")
	}

	var nilStore *TraceStore
	nilStore.Add(mk("x"))
	if nilStore.Get("x") != nil || nilStore.List() != nil || nilStore.Len() != 0 {
		t.Error("nil store must no-op")
	}
}

func TestTraceStoreDefaultCapacity(t *testing.T) {
	if c := NewTraceStore(0).Cap(); c != defaultTraceCap {
		t.Fatalf("cap = %d, want %d", c, defaultTraceCap)
	}
}

func TestTraceJSONFormats(t *testing.T) {
	tc := DefaultTracer.Start("select 1", 5)
	root := tc.StartSpan("request")
	root.Record("wire_read", tc.Start(), 50*time.Microsecond)
	q := root.StartChild("query")
	q.End()
	tc.Finish("ok")

	raw := TraceJSON(tc)
	var payload struct {
		TraceID string `json:"trace_id"`
		Status  string `json:"status"`
		Session int64  `json:"session"`
		Root    struct {
			Name     string `json:"name"`
			SpanID   int    `json:"span_id"`
			Children []struct {
				Name     string `json:"name"`
				ParentID int    `json:"parent_span_id"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("bad trace JSON: %v\n%s", err, raw)
	}
	if payload.TraceID != tc.ID() || payload.Status != "ok" || payload.Session != 5 {
		t.Fatalf("payload header = %+v", payload)
	}
	if payload.Root.Name != "request" || len(payload.Root.Children) != 2 {
		t.Fatalf("root = %+v", payload.Root)
	}
	for _, c := range payload.Root.Children {
		if c.ParentID != payload.Root.SpanID {
			t.Errorf("child %s parent_span_id = %d, want %d", c.Name, c.ParentID, payload.Root.SpanID)
		}
	}

	chrome := TraceChromeJSON(tc)
	var cp struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			PID  int    `json:"pid"`
			TID  int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &cp); err != nil {
		t.Fatalf("bad chrome JSON: %v\n%s", err, chrome)
	}
	if len(cp.TraceEvents) != 3 {
		t.Fatalf("chrome events = %d, want 3", len(cp.TraceEvents))
	}
	for _, ev := range cp.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID != 5 {
			t.Fatalf("bad event %+v", ev)
		}
	}

	text := TraceText(tc)
	if !strings.Contains(text, tc.ID()) || !strings.Contains(text, "wire_read") {
		t.Fatalf("text rendering:\n%s", text)
	}
}

func TestLoggerJSONAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	l.Debug("hidden")
	l.Info("query done", "session", int64(3), "trace_id", "abc", "duration_ms", 1.5)
	l.Warn("request shed", "reason", "queue_full")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d (debug must be filtered):\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "query done" || rec["trace_id"] != "abc" || rec["session"] != float64(3) {
		t.Fatalf("record = %v", rec)
	}

	child := l.With("session", int64(9))
	child.Error("boom", "err", "bad")
	var erec map[string]any
	last := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if err := json.Unmarshal([]byte(last[len(last)-1]), &erec); err != nil {
		t.Fatal(err)
	}
	if erec["session"] != float64(9) || erec["level"] != "ERROR" {
		t.Fatalf("child record = %v", erec)
	}

	var nilLogger *Logger
	nilLogger.Info("no-op") // must not panic
	nilLogger.With("k", "v").Warn("still no-op")
	NopLogger().Error("discarded")
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
		"ERROR":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("bogus level must error")
	}
}

func TestQueryRecordEffectiveStatus(t *testing.T) {
	if s := (QueryRecord{Status: "shed"}).EffectiveStatus(); s != "shed" {
		t.Errorf("explicit status: %q", s)
	}
	if s := (QueryRecord{Err: "boom"}).EffectiveStatus(); s != "error" {
		t.Errorf("err fallback: %q", s)
	}
	if s := (QueryRecord{}).EffectiveStatus(); s != "ok" {
		t.Errorf("default: %q", s)
	}
}
