package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one end-to-end query execution: a span tree rooted at the
// first StartSpan (the server's wire-level "request" span, or the
// engine's "query" span when no server is involved) plus two kinds of
// out-of-band timing that cannot live in the span tree directly:
//
//   - phases: named regions recorded from worker goroutines (HER
//     matching, BFS reachability, gL cache fills, RExt extraction,
//     IncExt maintenance). Span trees are single-goroutine by
//     contract, so concurrent phases append here under a mutex and
//     are grafted into a rendered copy of the tree on demand.
//   - operators: the per-operator stats the engine collects after
//     execution (rows, batches, elapsed, workers), nested by plan
//     depth under the execute span when rendered.
//
// A Trace is mutated only by the goroutines of the query it records
// and becomes immutable once Finish has run and the trace is handed
// to a TraceStore; readers (HTTP handlers, SHOW TRACES) only see it
// through the store. All methods are nil-safe no-ops.
type Trace struct {
	id      string
	session int64
	op      string
	start   time.Time
	forced  atomic.Bool

	// Root is the top of the span tree. It is built by the session
	// goroutine only (same contract as Span).
	Root *Span

	mu       sync.Mutex
	duration time.Duration
	status   string
	phases   []PhaseRecord
	ops      []OpNode
}

// PhaseRecord is one named execution region recorded via Phase —
// possibly from a worker goroutine, possibly overlapping others.
type PhaseRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// OpNode is one operator of the executed plan, flattened with its
// nesting depth (depth 0 = plan root). It mirrors rel.PlanLine without
// importing rel (obs sits below rel in the dependency order).
type OpNode struct {
	Depth   int
	Name    string
	Note    string
	Rows    int64
	Batches int64
	Workers int
	Elapsed time.Duration
}

// idState drives splitmix64 trace-id generation: the additive constant
// is the splitmix64 gamma, so successive IDs are well distributed even
// though allocation is a plain atomic add.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a fresh 16-hex-digit trace id. IDs are unique
// within a process run and sufficiently mixed to be sampled, sharded
// or grepped without collisions in practice.
func NewTraceID() string {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetID overrides the trace id (client-supplied wire propagation) and
// forces the trace to be kept: a caller who named the trace wants to
// find it again.
func (t *Trace) SetID(id string) {
	if t == nil || id == "" {
		return
	}
	t.id = id
	t.forced.Store(true)
}

// SetForced marks the trace to be kept regardless of sampling (TRACE
// statements, client-supplied ids).
func (t *Trace) SetForced() {
	if t != nil {
		t.forced.Store(true)
	}
}

// Forced reports whether the trace bypasses sampling.
func (t *Trace) Forced() bool {
	return t != nil && t.forced.Load()
}

// Session returns the session id the trace was started under (0 when
// not run through the server).
func (t *Trace) Session() int64 {
	if t == nil {
		return 0
	}
	return t.session
}

// Op returns the operation label (normally the query text).
func (t *Trace) Op() string {
	if t == nil {
		return ""
	}
	return t.op
}

// Start returns the trace start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetStart rebases the trace start (the server rebases to the instant
// the request line was decoded off the wire).
func (t *Trace) SetStart(at time.Time) {
	if t != nil && !at.IsZero() {
		t.start = at
	}
}

// StartSpan opens a span under the trace: the root if none exists
// yet, otherwise a child of the root. Must be called from the session
// goroutine (span trees are not goroutine-safe); worker goroutines
// record Phase instead.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	if t.Root == nil {
		t.Root = StartSpan(name)
		return t.Root
	}
	return t.Root.StartChild(name)
}

// Phase records a named region that started at start and ends now.
// Safe to call from any goroutine, including several concurrently.
func (t *Trace) Phase(name string, start time.Time) {
	if t == nil {
		return
	}
	rec := PhaseRecord{Name: name, Start: start, Duration: time.Since(start)}
	t.mu.Lock()
	t.phases = append(t.phases, rec)
	t.mu.Unlock()
}

// Phases returns the recorded phases sorted by start time.
func (t *Trace) Phases() []PhaseRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]PhaseRecord(nil), t.phases...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SetOperators attaches the executed plan's per-operator stats.
func (t *Trace) SetOperators(ops []OpNode) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ops = ops
	t.mu.Unlock()
}

// Operators returns the attached per-operator stats.
func (t *Trace) Operators() []OpNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// Finish freezes the trace: ends the root span, stamps the duration
// and final status ("ok", "error", "shed"). Repeated Finish keeps the
// first duration but lets the status be refined.
func (t *Trace) Finish(status string) {
	if t == nil {
		return
	}
	t.Root.End()
	t.mu.Lock()
	if t.duration == 0 {
		t.duration = time.Since(t.start)
	}
	t.status = status
	t.mu.Unlock()
}

// Duration returns the frozen trace duration (0 before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.duration
}

// Status returns the final status set by Finish ("" before).
func (t *Trace) Status() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// SpanCount counts every timed element the trace holds: tree spans,
// phases and operators.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	n := 0
	t.Root.Walk(func(*Span, int) { n++ })
	t.mu.Lock()
	n += len(t.phases) + len(t.ops)
	t.mu.Unlock()
	return n
}

// Tracer decides which traces are created with which ids and which
// finished traces are worth keeping. Sampling is decided at the END
// of a query, not the start: spans are cheap enough to always record,
// and deciding late is what makes "always keep slow queries" possible.
// All methods are nil-safe.
type Tracer struct {
	rate float64       // probabilistic keep rate in [0,1]
	slow time.Duration // traces at least this slow are always kept; 0 disables
	rng  atomic.Uint64 // private splitmix64 stream for keep decisions
}

// NewTracer returns a tracer that keeps finished traces with
// probability rate (clamped to [0,1]) and always keeps traces slower
// than slowAlways (0 disables the slow override). Forced traces are
// always kept regardless.
func NewTracer(rate float64, slowAlways time.Duration) *Tracer {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if slowAlways < 0 {
		slowAlways = 0
	}
	return &Tracer{rate: rate, slow: slowAlways}
}

// DefaultTracer keeps every trace: deterministic, and the bounded
// DefaultTraces ring caps the memory. Servers that need cheaper
// tracing install their own NewTracer(rate, slow).
var DefaultTracer = NewTracer(1.0, 0)

// Rate returns the probabilistic keep rate.
func (tr *Tracer) Rate() float64 {
	if tr == nil {
		return 0
	}
	return tr.rate
}

// SlowAlways returns the always-keep slowness threshold.
func (tr *Tracer) SlowAlways() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slow
}

// Start creates a trace for one operation. Nil-safe: a nil tracer
// yields a nil trace, and every Trace method no-ops on nil, so an
// untraced path costs one nil check per call site.
func (tr *Tracer) Start(op string, session int64) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{id: NewTraceID(), session: session, op: op, start: time.Now()}
}

// Keep reports whether a finished trace should be retained: forced
// traces always, slow traces (>= SlowAlways) always, otherwise a coin
// flip at Rate. Call after Finish so the duration is frozen.
func (tr *Tracer) Keep(t *Trace) bool {
	if tr == nil || t == nil {
		return false
	}
	if t.Forced() {
		return true
	}
	if tr.slow > 0 && t.Duration() >= tr.slow {
		return true
	}
	if tr.rate >= 1 {
		return true
	}
	if tr.rate <= 0 {
		return false
	}
	x := tr.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	// Top 53 bits → uniform float64 in [0,1).
	return float64(x>>11)/(1<<53) < tr.rate
}

// RenderTree returns a deep copy of root with the trace's phases and
// operators grafted in as synthetic spans ("phase:…" under the last
// "execute" descendant, or the root when none; "op:…" nested by plan
// depth below that). The copy is what /traces/<id> and the TRACE
// statement render; the live tree is never mutated, so EXPLAIN
// ANALYZE's own walk of LastTrace stays duplicate-free.
func (t *Trace) RenderTree(root *Span) *Span {
	if t == nil || root == nil {
		return copySpan(root)
	}
	cp := copySpan(root)
	target := lastDescendant(cp, "execute")
	if target == nil {
		target = cp
	}
	for _, ph := range t.Phases() {
		target.Children = append(target.Children, &Span{
			Name:     "phase:" + ph.Name,
			Start:    ph.Start,
			Duration: ph.Duration,
		})
	}
	graftOps(target, t.Operators())
	return cp
}

// RenderRoot renders the trace's own root tree (the wire-level view).
func (t *Trace) RenderRoot() *Span {
	if t == nil {
		return nil
	}
	return t.RenderTree(t.Root)
}

func copySpan(s *Span) *Span {
	if s == nil {
		return nil
	}
	cp := &Span{Name: s.Name, Note: s.Note, Start: s.Start, Duration: s.Duration}
	for _, c := range s.Children {
		cp.Children = append(cp.Children, copySpan(c))
	}
	return cp
}

// lastDescendant finds the last span named name in pre-order (the
// engine's execute span is the last one opened under the query span).
func lastDescendant(s *Span, name string) *Span {
	var found *Span
	s.Walk(func(sp *Span, _ int) {
		if sp.Name == name {
			found = sp
		}
	})
	return found
}

// graftOps nests the flattened operator list under target using each
// node's plan depth. Operator spans carry the plan's own start time
// approximated by the target span (per-operator wall-clock starts are
// not tracked; elapsed is exact).
func graftOps(target *Span, ops []OpNode) {
	stack := []*Span{target}
	for _, op := range ops {
		depth := op.Depth
		if depth < 0 {
			depth = 0
		}
		// A well-formed plan never skips depths, but clamp anyway so a
		// malformed one nests under the deepest open span instead of
		// indexing past the stack.
		if depth > len(stack)-1 {
			depth = len(stack) - 1
		}
		if depth+1 < len(stack) {
			stack = stack[:depth+1]
		}
		parent := stack[len(stack)-1]
		note := op.Note
		extra := opStatNote(op)
		if extra != "" {
			if note != "" {
				note += " "
			}
			note += extra
		}
		sp := &Span{
			Name:     "op:" + op.Name,
			Note:     note,
			Start:    target.Start,
			Duration: op.Elapsed,
		}
		parent.Children = append(parent.Children, sp)
		stack = append(stack, sp)
	}
}

func opStatNote(op OpNode) string {
	parts := []string{fmt.Sprintf("rows=%d", op.Rows)}
	if op.Batches > 0 {
		parts = append(parts, fmt.Sprintf("batches=%d", op.Batches))
	}
	if op.Workers > 1 {
		parts = append(parts, fmt.Sprintf("workers=%d", op.Workers))
	}
	return strings.Join(parts, " ")
}
