package dataio

import (
	"bytes"
	"strings"
	"testing"

	"semjoin/internal/dataset"
	"semjoin/internal/rel"
)

func TestLoadRelationCSV(t *testing.T) {
	csvText := `pid,name,price,rating,active
p1,Widget A,100,4.5,true
p2,"Widget, B",250,3.0,false
p3,Widget C,,4.0,true
`
	r, err := LoadRelationCSV(strings.NewReader(csvText), "product", "pid")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || r.Schema.Key != "pid" {
		t.Fatalf("rows=%d key=%q", r.Len(), r.Schema.Key)
	}
	wantKinds := map[string]rel.Kind{
		"pid": rel.KindString, "name": rel.KindString,
		"price": rel.KindInt, "rating": rel.KindFloat, "active": rel.KindBool,
	}
	for _, a := range r.Schema.Attrs {
		if a.Type != wantKinds[a.Name] {
			t.Errorf("column %s kind = %v, want %v", a.Name, a.Type, wantKinds[a.Name])
		}
	}
	if got := r.Get(r.Tuples[1], "name").Str(); got != "Widget, B" {
		t.Fatalf("quoted cell = %q", got)
	}
	if !r.Get(r.Tuples[2], "price").IsNull() {
		t.Fatal("empty cell should be NULL")
	}
	if r.Get(r.Tuples[0], "price").Int() != 100 {
		t.Fatal("int parse wrong")
	}
}

func TestLoadRelationCSVMixedNumeric(t *testing.T) {
	r, err := LoadRelationCSV(strings.NewReader("x\n1\n2.5\n"), "t", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema.Attrs[0].Type != rel.KindFloat {
		t.Fatalf("mixed int/float should infer float, got %v", r.Schema.Attrs[0].Type)
	}
}

func TestLoadRelationCSVErrors(t *testing.T) {
	if _, err := LoadRelationCSV(strings.NewReader(""), "t", ""); err == nil {
		t.Fatal("empty csv should error")
	}
	if _, err := LoadRelationCSV(strings.NewReader("a,b\n1\n"), "t", ""); err == nil {
		t.Fatal("ragged row should error")
	}
	if _, err := LoadRelationCSV(strings.NewReader("a,b\n1,2\n"), "t", "nope"); err == nil {
		t.Fatal("missing key column should error")
	}
}

func TestRelationCSVRoundTrip(t *testing.T) {
	c := dataset.Movie(dataset.Config{Entities: 12, Seed: 3})
	orig := c.Main()
	var buf bytes.Buffer
	if err := WriteRelationCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRelationCSV(&buf, orig.Schema.Name, orig.Schema.Key)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || len(back.Schema.Attrs) != len(orig.Schema.Attrs) {
		t.Fatal("shape changed")
	}
	for i := range orig.Tuples {
		for j := range orig.Tuples[i] {
			a, b := orig.Tuples[i][j], back.Tuples[i][j]
			if a.String() != b.String() {
				t.Fatalf("cell %d,%d: %q vs %q", i, j, a, b)
			}
		}
	}
}

func TestLoadGraphTSV(t *testing.T) {
	tsv := "# comment\n" +
		"V\ta\tAcme Corp\tcompany\n" +
		"V\tuk\tUK\tcountry\n" +
		"V\tp\tgadget\t\n" +
		"E\ta\tregistered_in\tuk\n" +
		"E\ta\tissues\tp\n"
	g, ids, err := LoadGraphTSV(strings.NewReader(tsv))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("graph = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Label(ids["a"]) != "Acme Corp" || g.Type(ids["uk"]) != "country" {
		t.Fatal("labels/types wrong")
	}
	if g.Type(ids["p"]) != "" {
		t.Fatal("empty type should stay empty")
	}
}

func TestLoadGraphTSVErrors(t *testing.T) {
	bad := []string{
		"V\tonly\n",
		"E\ta\tl\tb\n",
		"V\ta\tx\t\nV\ta\ty\t\n",
		"X\tweird\n",
		"V\ta\tx\nE\ta\tl\tmissing\n",
	}
	for _, s := range bad {
		if _, _, err := LoadGraphTSV(strings.NewReader(s)); err == nil {
			t.Errorf("LoadGraphTSV(%q) should fail", s)
		}
	}
}

func TestGraphTSVRoundTrip(t *testing.T) {
	c := dataset.Drugs(dataset.Config{Entities: 12, Seed: 3})
	var buf bytes.Buffer
	if err := WriteGraphTSV(&buf, c.G); err != nil {
		t.Fatal(err)
	}
	back, _, err := LoadGraphTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != c.G.NumVertices() || back.NumEdges() != c.G.NumEdges() {
		t.Fatalf("graph shape changed: %d/%d vs %d/%d",
			back.NumVertices(), back.NumEdges(), c.G.NumVertices(), c.G.NumEdges())
	}
	if len(back.Types()) != len(c.G.Types()) {
		t.Fatal("types changed")
	}
	if len(back.EdgeLabels()) != len(c.G.EdgeLabels()) {
		t.Fatal("edge labels changed")
	}
}
