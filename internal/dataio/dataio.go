// Package dataio loads and stores the two data substrates in plain-text
// interchange formats, so real relations and graphs can be brought into
// semjoin without writing Go:
//
//   - Relations as CSV: the first row is the header; column types are
//     inferred (int, then float, then bool, then string — a column falls
//     back to string unless every non-empty cell agrees); empty cells are
//     NULL.
//
//   - Graphs as TSV triples: `V<TAB>id<TAB>label<TAB>type` declares a
//     vertex (type may be empty), `E<TAB>src<TAB>label<TAB>dst` an edge
//     between previously declared vertex ids; `#` starts a comment.
//     Vertex ids are file-local strings, mapped to graph.VertexID on
//     load.
package dataio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

// LoadRelationCSV reads a relation from CSV. name becomes the relation
// name; key names the tuple-id attribute and must be a header column (or
// "" for no key).
func LoadRelationCSV(in io.Reader, name, key string) (*rel.Relation, error) {
	cr := csv.NewReader(in)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataio: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataio: empty csv (no header)")
	}
	header := records[0]
	rows := records[1:]
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataio: row %d has %d fields, header has %d", i+2, len(rec), len(header))
		}
	}

	kinds := inferKinds(header, rows)
	attrs := make([]rel.Attribute, len(header))
	for i, h := range header {
		attrs[i] = rel.Attribute{Name: strings.TrimSpace(h), Type: kinds[i]}
	}
	if key != "" {
		found := false
		for _, a := range attrs {
			if a.Name == key {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("dataio: key %q not among columns %v", key, header)
		}
	}
	out := rel.NewRelation(rel.NewSchema(name, key, attrs...))
	for _, rec := range rows {
		t := make(rel.Tuple, len(rec))
		for i, cell := range rec {
			t[i] = parseAs(strings.TrimSpace(cell), kinds[i])
		}
		out.Insert(t)
	}
	return out, nil
}

// inferKinds picks the most specific kind every non-empty cell of a
// column satisfies.
func inferKinds(header []string, rows [][]string) []rel.Kind {
	kinds := make([]rel.Kind, len(header))
	for c := range header {
		kind := rel.KindNull // undecided
		for _, rec := range rows {
			cell := strings.TrimSpace(rec[c])
			if cell == "" {
				continue
			}
			k := cellKind(cell)
			switch {
			case kind == rel.KindNull:
				kind = k
			case kind == k:
			case (kind == rel.KindInt && k == rel.KindFloat) || (kind == rel.KindFloat && k == rel.KindInt):
				kind = rel.KindFloat
			default:
				kind = rel.KindString
			}
			if kind == rel.KindString {
				break
			}
		}
		if kind == rel.KindNull {
			kind = rel.KindString
		}
		kinds[c] = kind
	}
	return kinds
}

func cellKind(cell string) rel.Kind {
	if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return rel.KindInt
	}
	if _, err := strconv.ParseFloat(cell, 64); err == nil {
		return rel.KindFloat
	}
	if cell == "true" || cell == "false" {
		return rel.KindBool
	}
	return rel.KindString
}

func parseAs(cell string, kind rel.Kind) rel.Value {
	if cell == "" {
		return rel.Null
	}
	switch kind {
	case rel.KindInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return rel.S(cell)
		}
		return rel.I(n)
	case rel.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return rel.S(cell)
		}
		return rel.F(f)
	case rel.KindBool:
		return rel.B(cell == "true")
	}
	return rel.S(cell)
}

// WriteRelationCSV writes a relation as CSV (header + rows; NULLs are
// empty cells).
func WriteRelationCSV(out io.Writer, r *rel.Relation) error {
	cw := csv.NewWriter(out)
	if err := cw.Write(r.Schema.AttrNames()); err != nil {
		return err
	}
	row := make([]string, len(r.Schema.Attrs))
	for _, t := range r.Tuples {
		for i, v := range t {
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadGraphTSV reads a graph from the TSV triple format. It returns the
// graph and the file-id → vertex-id mapping (useful for building ground
// truth alignments).
func LoadGraphTSV(in io.Reader) (*graph.Graph, map[string]graph.VertexID, error) {
	g := graph.New()
	ids := map[string]graph.VertexID{}
	var lineBuf strings.Builder
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, nil, err
	}
	lineBuf.Write(data)
	lines := strings.Split(lineBuf.String(), "\n")
	for ln, line := range lines {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		switch fields[0] {
		case "V":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, nil, fmt.Errorf("dataio: line %d: V needs id, label[, type]", ln+1)
			}
			id := fields[1]
			if _, dup := ids[id]; dup {
				return nil, nil, fmt.Errorf("dataio: line %d: duplicate vertex id %q", ln+1, id)
			}
			typ := ""
			if len(fields) == 4 {
				typ = fields[3]
			}
			ids[id] = g.AddVertex(fields[2], typ)
		case "E":
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("dataio: line %d: E needs src, label, dst", ln+1)
			}
			src, ok := ids[fields[1]]
			if !ok {
				return nil, nil, fmt.Errorf("dataio: line %d: unknown vertex %q", ln+1, fields[1])
			}
			dst, ok := ids[fields[3]]
			if !ok {
				return nil, nil, fmt.Errorf("dataio: line %d: unknown vertex %q", ln+1, fields[3])
			}
			if _, err := g.AddEdge(src, fields[2], dst); err != nil {
				return nil, nil, fmt.Errorf("dataio: line %d: %w", ln+1, err)
			}
		default:
			return nil, nil, fmt.Errorf("dataio: line %d: unknown record %q", ln+1, fields[0])
		}
	}
	return g, ids, nil
}

// WriteGraphTSV writes a graph in the TSV triple format, using the
// numeric vertex id as the file id.
func WriteGraphTSV(out io.Writer, g *graph.Graph) error {
	var err error
	write := func(format string, args ...any) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(out, format, args...)
	}
	write("# semjoin graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	g.Vertices(func(v graph.Vertex) {
		write("V\t%d\t%s\t%s\n", v.ID, v.Label, v.Type)
	})
	g.Edges(func(e graph.Edge) {
		write("E\t%d\t%s\t%d\n", e.From, e.Label, e.To)
	})
	return err
}
