package cluster

import (
	"testing"

	"semjoin/internal/mat"
)

// mustKMeans runs KMeans and fails the test on a configuration error.
func mustKMeans(t *testing.T, pts []mat.Vector, cfg Config) Result {
	t.Helper()
	res, err := KMeans(pts, cfg)
	if err != nil {
		t.Fatalf("KMeans: %v", err)
	}
	return res
}

// blobs generates n points around each of the given centres with the given
// spread.
func blobs(centres []mat.Vector, n int, spread float64, seed uint64) ([]mat.Vector, []int) {
	rng := mat.NewRNG(seed)
	var pts []mat.Vector
	var truth []int
	for ci, c := range centres {
		for i := 0; i < n; i++ {
			p := c.Clone()
			for d := range p {
				p[d] += rng.NormFloat64() * spread
			}
			pts = append(pts, p)
			truth = append(truth, ci)
		}
	}
	return pts, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	centres := []mat.Vector{{0, 0}, {10, 10}, {-10, 10}}
	pts, truth := blobs(centres, 40, 0.5, 3)
	res := mustKMeans(t, pts, Config{K: 3, Seed: 5})
	// Every ground-truth blob must map to exactly one cluster id.
	blobToCluster := map[int]int{}
	for i, g := range truth {
		c := res.Assign[i]
		if prev, ok := blobToCluster[g]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", g, prev, c)
			}
		} else {
			blobToCluster[g] = c
		}
	}
	if len(blobToCluster) != 3 {
		t.Fatalf("expected 3 distinct clusters, got %d", len(blobToCluster))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	pts, _ := blobs([]mat.Vector{{0, 0}, {8, 8}, {-8, 8}, {8, -8}}, 30, 1.0, 7)
	var last float64
	for i, k := range []int{1, 2, 4, 8} {
		res := mustKMeans(t, pts, Config{K: k, Seed: 2})
		if i > 0 && res.Inertia > last {
			t.Fatalf("inertia should not increase with K: k=%d %.2f > %.2f", k, res.Inertia, last)
		}
		last = res.Inertia
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := blobs([]mat.Vector{{0, 0}, {5, 5}}, 25, 0.8, 9)
	a := mustKMeans(t, pts, Config{K: 2, Seed: 4, Parallel: 1})
	b := mustKMeans(t, pts, Config{K: 2, Seed: 4, Parallel: 4})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("parallelism must not change the result for a fixed seed")
		}
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	pts := []mat.Vector{{0, 0}, {1, 1}}
	res := mustKMeans(t, pts, Config{K: 10, Seed: 1})
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d, want 2", len(res.Centroids))
	}
	if res.Assign[0] == res.Assign[1] {
		t.Fatal("two distinct points with K>=2 should separate")
	}
}

func TestKMeansSinglePointAndEmpty(t *testing.T) {
	res := mustKMeans(t, []mat.Vector{{3, 4}}, Config{K: 3})
	if len(res.Assign) != 1 || res.Assign[0] != 0 {
		t.Fatalf("single point: %+v", res)
	}
	empty := mustKMeans(t, nil, Config{K: 3})
	if empty.Assign != nil {
		t.Fatal("empty input should give empty result")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([]mat.Vector, 20)
	for i := range pts {
		pts[i] = mat.Vector{1, 2, 3}
	}
	res := mustKMeans(t, pts, Config{K: 4, Seed: 1})
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia = %v", res.Inertia)
	}
}

func TestKMeansRejectsBadK(t *testing.T) {
	if _, err := KMeans([]mat.Vector{{1}}, Config{K: 0}); err == nil {
		t.Fatal("expected an error for K < 1")
	}
	if _, err := KMeans([]mat.Vector{{1}}, Config{K: -3}); err == nil {
		t.Fatal("expected an error for negative K")
	}
}

func TestInjectNoise(t *testing.T) {
	assign := make([]int, 100)
	orig := append([]int(nil), assign...)
	n := InjectNoise(assign, 5, 0.2, 11)
	if n != 20 {
		t.Fatalf("corrupted = %d, want 20", n)
	}
	changed := 0
	for i := range assign {
		if assign[i] != orig[i] {
			changed++
			if assign[i] < 0 || assign[i] >= 5 {
				t.Fatalf("invalid cluster id %d", assign[i])
			}
		}
	}
	if changed != 20 {
		t.Fatalf("changed = %d, want 20 (noise must move labels to *other* clusters)", changed)
	}
}

func TestInjectNoiseEdgeCases(t *testing.T) {
	assign := []int{0, 1, 0}
	if n := InjectNoise(assign, 1, 0.5, 1); n != 0 {
		t.Fatal("k<2 should be a no-op")
	}
	if n := InjectNoise(assign, 3, 0, 1); n != 0 {
		t.Fatal("frac=0 should be a no-op")
	}
}
