// Package cluster implements the K-means clustering (KMC) step of §III-A:
// vertex-path pair embeddings are partitioned into H clusters so that
// paths with similar semantics land together. Assignment is parallelised
// across points (the paper parallelises KMC [38]); seeding uses k-means++
// for quality, and Lloyd iterations are capped as the paper's "limited
// iterations".
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"semjoin/internal/mat"
)

// Config parameterises KMeans. Zero fields take defaults.
type Config struct {
	K        int    // number of clusters H (required, >= 1)
	MaxIter  int    // Lloyd iteration cap (default 25)
	Seed     uint64 // seeding RNG (default 1)
	Parallel int    // worker count (default NumCPU)
}

// Result is a clustering outcome.
type Result struct {
	// Assign maps each point index to its cluster in [0, K).
	Assign []int
	// Centroids are the final cluster centres (length K; empty clusters
	// keep their last centre).
	Centroids []mat.Vector
	// Inertia is the summed squared distance of points to their centres.
	Inertia float64
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// KMeans clusters points into cfg.K groups. Points must share one
// dimensionality; an empty input yields an empty Result. A
// non-positive K is a configuration error, reported rather than
// panicked so callers wiring user-supplied parameters (H from a query
// or a config file) get a diagnosable failure.
func KMeans(points []mat.Vector, cfg Config) (Result, error) {
	if len(points) == 0 {
		return Result{}, nil
	}
	if cfg.K < 1 {
		return Result{}, fmt.Errorf("cluster: K must be >= 1, got %d", cfg.K)
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Parallel == 0 {
		cfg.Parallel = runtime.NumCPU()
	}
	k := cfg.K
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])
	rng := mat.NewRNG(cfg.Seed)

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	res := Result{Assign: assign, Centroids: centroids}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iters = iter + 1
		changed, inertia := assignAll(points, centroids, assign, cfg.Parallel)
		res.Inertia = inertia
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([]mat.Vector, k)
		for c := range sums {
			sums[c] = mat.NewVector(dim)
		}
		for i, c := range assign {
			counts[c]++
			sums[c].Add(points[i])
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Reseed an empty cluster at the point farthest from its
				// current centre to keep K live clusters.
				far, farD := 0, -1.0
				for i := range points {
					d := mat.SqDist(points[i], centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = points[far].Clone()
				continue
			}
			sums[c].Scale(1 / float64(counts[c]))
			centroids[c] = sums[c]
		}
		if !changed {
			break
		}
	}
	return res, nil
}

// seedPlusPlus picks k initial centroids with k-means++ (D² sampling).
func seedPlusPlus(points []mat.Vector, k int, rng *mat.RNG) []mat.Vector {
	centroids := make([]mat.Vector, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, points[first].Clone())
	d2 := make([]float64, len(points))
	for i := range points {
		d2[i] = mat.SqDist(points[i], centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total == 0 {
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := points[next].Clone()
		centroids = append(centroids, c)
		for i := range points {
			if d := mat.SqDist(points[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// assignAll reassigns every point to its nearest centroid in parallel and
// reports whether any assignment changed plus the total inertia.
func assignAll(points []mat.Vector, centroids []mat.Vector, assign []int, workers int) (bool, float64) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(points) {
		workers = len(points)
	}
	type partial struct {
		changed bool
		inertia float64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				best, bestD := 0, mat.SqDist(points[i], centroids[0])
				for c := 1; c < len(centroids); c++ {
					if d := mat.SqDist(points[i], centroids[c]); d < bestD {
						best, bestD = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					parts[w].changed = true
				}
				parts[w].inertia += bestD
			}
		}(w, lo, hi)
	}
	wg.Wait()
	changed := false
	inertia := 0.0
	for _, p := range parts {
		changed = changed || p.changed
		inertia += p.inertia
	}
	return changed, inertia
}

// InjectNoise reassigns a fraction of points to uniformly random other
// clusters, returning the number of corrupted labels. Exp-2(b)(4) uses it
// to measure RExt's robustness to clustering errors (Fig 5(f)).
func InjectNoise(assign []int, k int, frac float64, seed uint64) int {
	if k < 2 || frac <= 0 {
		return 0
	}
	rng := mat.NewRNG(seed)
	n := int(float64(len(assign)) * frac)
	perm := rng.Perm(len(assign))
	for i := 0; i < n && i < len(perm); i++ {
		p := perm[i]
		old := assign[p]
		nc := rng.Intn(k - 1)
		if nc >= old {
			nc++
		}
		assign[p] = nc
	}
	if n > len(assign) {
		n = len(assign)
	}
	return n
}
