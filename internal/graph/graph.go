// Package graph implements the directed labeled graph substrate of the
// paper: G = (V, E, L) where vertex labels may carry values and edge labels
// typify predicates (§II-A). It provides the traversal primitives the
// extraction scheme and semantic joins need — undirected simple-path
// expansion bounded by k, bidirectional BFS k-hop connectivity, random
// walks for corpus construction — plus batch updates (ΔG) for incremental
// maintenance.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex within a Graph.
type VertexID int32

// NoVertex is the invalid vertex id.
const NoVertex VertexID = -1

// Vertex is a labeled graph vertex. Label may carry a value (e.g. "UK",
// "G&L ESG"); Type classifies the vertex when the graph is "typed"
// (§IV-B), e.g. "product", "company". Type may be empty for untyped graphs.
type Vertex struct {
	ID      VertexID
	Label   string
	Type    string
	deleted bool
}

// HalfEdge is one adjacency entry: the edge label and the vertex on the
// other side. Dir records the orientation relative to the owning vertex.
type HalfEdge struct {
	Label string
	To    VertexID
}

// Edge is a fully specified directed labeled edge.
type Edge struct {
	From  VertexID
	Label string
	To    VertexID
}

// Graph is a directed labeled multigraph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation; concurrent
// readers are safe once mutation has stopped.
type Graph struct {
	vertices []Vertex
	out      [][]HalfEdge
	in       [][]HalfEdge
	numEdges int
	// byType indexes live vertices by Type for typed-graph operations.
	byType map[string][]VertexID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byType: make(map[string][]VertexID)}
}

// AddVertex inserts a vertex with the given label and type and returns its
// id.
func (g *Graph) AddVertex(label, typ string) VertexID {
	id := VertexID(len(g.vertices))
	g.vertices = append(g.vertices, Vertex{ID: id, Label: label, Type: typ})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if g.byType == nil {
		g.byType = make(map[string][]VertexID)
	}
	g.byType[typ] = append(g.byType[typ], id)
	return id
}

// AddEdge inserts a directed labeled edge and reports whether the graph
// changed. Parallel edges with distinct labels are allowed; inserting
// the exact same (from,label,to) twice is a no-op so that random update
// streams remain idempotent. Referencing a missing or deleted endpoint
// is an error (it used to panic), so malformed update streams degrade
// into a reportable failure instead of crashing the process.
func (g *Graph) AddEdge(from VertexID, label string, to VertexID) (bool, error) {
	if !g.Live(from) {
		return false, fmt.Errorf("graph: AddEdge: vertex %d does not exist", from)
	}
	if !g.Live(to) {
		return false, fmt.Errorf("graph: AddEdge: vertex %d does not exist", to)
	}
	for _, he := range g.out[from] {
		if he.To == to && he.Label == label {
			return false, nil
		}
	}
	g.out[from] = append(g.out[from], HalfEdge{Label: label, To: to})
	g.in[to] = append(g.in[to], HalfEdge{Label: label, To: from})
	g.numEdges++
	return true, nil
}

// RemoveEdge deletes the edge (from,label,to) if present and reports
// whether it was removed.
func (g *Graph) RemoveEdge(from VertexID, label string, to VertexID) bool {
	if !g.Live(from) || !g.Live(to) {
		return false
	}
	if !removeHalf(&g.out[from], label, to) {
		return false
	}
	removeHalf(&g.in[to], label, from)
	g.numEdges--
	return true
}

func removeHalf(hs *[]HalfEdge, label string, to VertexID) bool {
	s := *hs
	for i, he := range s {
		if he.To == to && he.Label == label {
			s[i] = s[len(s)-1]
			*hs = s[:len(s)-1]
			return true
		}
	}
	return false
}

// RemoveVertex deletes v and all its incident edges.
func (g *Graph) RemoveVertex(v VertexID) {
	if !g.Live(v) {
		return
	}
	for _, he := range g.out[v] {
		removeHalf(&g.in[he.To], he.Label, v)
		g.numEdges--
	}
	for _, he := range g.in[v] {
		removeHalf(&g.out[he.To], he.Label, v)
		g.numEdges--
	}
	g.out[v], g.in[v] = nil, nil
	typ := g.vertices[v].Type
	ids := g.byType[typ]
	for i, id := range ids {
		if id == v {
			ids[i] = ids[len(ids)-1]
			g.byType[typ] = ids[:len(ids)-1]
			break
		}
	}
	g.vertices[v].deleted = true
}

// Live reports whether v is a valid, non-deleted vertex id.
func (g *Graph) Live(v VertexID) bool {
	return v >= 0 && int(v) < len(g.vertices) && !g.vertices[v].deleted
}

func (g *Graph) mustLive(v VertexID) {
	if !g.Live(v) {
		panic(fmt.Sprintf("graph: vertex %d does not exist", v)) //lint:allow nopanic internal invariant: vertex IDs are only minted by AddVertex
	}
}

// Vertex returns the vertex record for id. It panics on invalid ids.
func (g *Graph) Vertex(id VertexID) Vertex {
	g.mustLive(id)
	return g.vertices[id]
}

// Label returns the label of v, or "" if v is not live.
func (g *Graph) Label(v VertexID) string {
	if !g.Live(v) {
		return ""
	}
	return g.vertices[v].Label
}

// Type returns the type of v, or "" if v is not live.
func (g *Graph) Type(v VertexID) string {
	if !g.Live(v) {
		return ""
	}
	return g.vertices[v].Type
}

// Out returns the outgoing adjacency of v. The returned slice must not be
// modified.
func (g *Graph) Out(v VertexID) []HalfEdge {
	g.mustLive(v)
	return g.out[v]
}

// In returns the incoming adjacency of v. The returned slice must not be
// modified.
func (g *Graph) In(v VertexID) []HalfEdge {
	g.mustLive(v)
	return g.in[v]
}

// Neighbors appends to dst every undirected neighbour of v together with
// the connecting edge label, treating G as undirected as the path
// definition in §II-A requires, and returns the extended slice.
func (g *Graph) Neighbors(dst []HalfEdge, v VertexID) []HalfEdge {
	g.mustLive(v)
	dst = append(dst, g.out[v]...)
	dst = append(dst, g.in[v]...)
	return dst
}

// Degree returns the undirected degree of v.
func (g *Graph) Degree(v VertexID) int {
	g.mustLive(v)
	return len(g.out[v]) + len(g.in[v])
}

// NumVertices returns the count of live vertices.
func (g *Graph) NumVertices() int {
	n := 0
	for _, v := range g.vertices {
		if !v.deleted {
			n++
		}
	}
	return n
}

// NumEdges returns the count of live edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// MaxVertexID returns the largest id ever allocated plus one (the bound for
// dense per-vertex arrays). Deleted ids are included.
func (g *Graph) MaxVertexID() int { return len(g.vertices) }

// VerticesOfType returns the live vertices whose Type equals typ, in
// ascending id order.
func (g *Graph) VerticesOfType(typ string) []VertexID {
	ids := g.byType[typ]
	out := make([]VertexID, 0, len(ids))
	for _, id := range ids {
		if g.Live(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Types returns the distinct vertex types with at least one live vertex,
// sorted.
func (g *Graph) Types() []string {
	var ts []string
	for t, ids := range g.byType {
		alive := false
		for _, id := range ids {
			if g.Live(id) {
				alive = true
				break
			}
		}
		if alive {
			ts = append(ts, t)
		}
	}
	sort.Strings(ts)
	return ts
}

// Vertices calls fn for every live vertex.
func (g *Graph) Vertices(fn func(Vertex)) {
	for _, v := range g.vertices {
		if !v.deleted {
			fn(v)
		}
	}
}

// Edges calls fn for every live edge.
func (g *Graph) Edges(fn func(Edge)) {
	for from, hs := range g.out {
		if g.vertices[from].deleted {
			continue
		}
		for _, he := range hs {
			fn(Edge{From: VertexID(from), Label: he.Label, To: he.To})
		}
	}
}

// Clone returns a deep copy of the graph. Experiments use it to compare
// incremental maintenance against a from-scratch run on the same ΔG.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		vertices: append([]Vertex(nil), g.vertices...),
		out:      make([][]HalfEdge, len(g.out)),
		in:       make([][]HalfEdge, len(g.in)),
		numEdges: g.numEdges,
		byType:   make(map[string][]VertexID, len(g.byType)),
	}
	for i, hs := range g.out {
		out.out[i] = append([]HalfEdge(nil), hs...)
	}
	for i, hs := range g.in {
		out.in[i] = append([]HalfEdge(nil), hs...)
	}
	for t, ids := range g.byType {
		out.byType[t] = append([]VertexID(nil), ids...)
	}
	return out
}

// EdgeLabels returns the distinct edge labels in the graph, sorted.
func (g *Graph) EdgeLabels() []string {
	seen := make(map[string]bool)
	g.Edges(func(e Edge) { seen[e.Label] = true })
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
