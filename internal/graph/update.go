package graph

import "semjoin/internal/mat"

// UpdateOp is the kind of a single graph update.
type UpdateOp int

const (
	// InsertEdge adds an edge (creating no vertices).
	InsertEdge UpdateOp = iota
	// DeleteEdge removes an edge.
	DeleteEdge
	// InsertVertex adds a vertex; Edge.From receives the new id on Apply.
	InsertVertex
	// DeleteVertex removes the vertex Edge.From and its incident edges.
	DeleteVertex
)

// Update is one element of a batch ΔG.
type Update struct {
	Op    UpdateOp
	Edge  Edge   // edge for edge ops; From used for vertex ops
	Label string // vertex label for InsertVertex
	Type  string // vertex type for InsertVertex
}

// Batch is an ordered set of updates ΔG.
type Batch []Update

// Apply applies every update to g and returns the vertices touched by the
// batch: edge endpoints, deleted vertices and inserted vertices. IncExt
// seeds its affected-vertex search from this set.
func (b Batch) Apply(g *Graph) []VertexID {
	touchedSet := make(map[VertexID]bool)
	for i := range b {
		u := &b[i]
		switch u.Op {
		case InsertEdge:
			if g.Live(u.Edge.From) && g.Live(u.Edge.To) {
				g.AddEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
				touchedSet[u.Edge.From] = true
				touchedSet[u.Edge.To] = true
			}
		case DeleteEdge:
			if g.RemoveEdge(u.Edge.From, u.Edge.Label, u.Edge.To) {
				touchedSet[u.Edge.From] = true
				touchedSet[u.Edge.To] = true
			}
		case InsertVertex:
			id := g.AddVertex(u.Label, u.Type)
			u.Edge.From = id
			touchedSet[id] = true
		case DeleteVertex:
			if g.Live(u.Edge.From) {
				// Neighbours of a deleted vertex lose paths through it.
				for _, he := range g.Out(u.Edge.From) {
					touchedSet[he.To] = true
				}
				for _, he := range g.In(u.Edge.From) {
					touchedSet[he.To] = true
				}
				g.RemoveVertex(u.Edge.From)
			}
		}
	}
	touched := make([]VertexID, 0, len(touchedSet))
	for v := range touchedSet {
		if g.Live(v) {
			touched = append(touched, v)
		}
	}
	return touched
}

// RandomBatch builds a ΔG with n/2 edge deletions sampled from the live
// edges of g and n/2 insertions of fresh edges between random live vertices
// reusing existing edge labels, so that |G| stays (approximately) unchanged
// as in Exp-4. The batch is not applied.
func RandomBatch(g *Graph, rng *mat.RNG, n int) Batch {
	var edges []Edge
	g.Edges(func(e Edge) { edges = append(edges, e) })
	var ids []VertexID
	g.Vertices(func(v Vertex) { ids = append(ids, v.ID) })
	labels := g.EdgeLabels()
	if len(edges) == 0 || len(ids) < 2 || len(labels) == 0 {
		return nil
	}
	half := n / 2
	batch := make(Batch, 0, n)
	perm := rng.Perm(len(edges))
	for i := 0; i < half && i < len(perm); i++ {
		batch = append(batch, Update{Op: DeleteEdge, Edge: edges[perm[i]]})
	}
	for i := 0; i < n-half; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		if from == to {
			to = ids[(rng.Intn(len(ids)-1)+1+indexOf(ids, from))%len(ids)]
		}
		batch = append(batch, Update{
			Op:   InsertEdge,
			Edge: Edge{From: from, Label: labels[rng.Intn(len(labels))], To: to},
		})
	}
	return batch
}

func indexOf(ids []VertexID, v VertexID) int {
	for i, id := range ids {
		if id == v {
			return i
		}
	}
	return 0
}
