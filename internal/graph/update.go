package graph

import "semjoin/internal/mat"

// UpdateOp is the kind of a single graph update.
type UpdateOp int

const (
	// InsertEdge adds an edge (creating no vertices).
	InsertEdge UpdateOp = iota
	// DeleteEdge removes an edge.
	DeleteEdge
	// InsertVertex adds a vertex; Edge.From receives the new id on Apply.
	InsertVertex
	// DeleteVertex removes the vertex Edge.From and its incident edges.
	DeleteVertex
)

// Update is one element of a batch ΔG.
type Update struct {
	Op    UpdateOp
	Edge  Edge   // edge for edge ops; From used for vertex ops
	Label string // vertex label for InsertVertex
	Type  string // vertex type for InsertVertex
}

// Batch is an ordered set of updates ΔG.
type Batch []Update

// Apply applies every update to g and returns the vertices touched by the
// batch: edge endpoints, deleted vertices and inserted vertices. IncExt
// seeds its affected-vertex search from this set.
func (b Batch) Apply(g *Graph) []VertexID {
	touchedSet := make(map[VertexID]bool)
	for i := range b {
		u := &b[i]
		switch u.Op {
		case InsertEdge:
			if g.Live(u.Edge.From) && g.Live(u.Edge.To) {
				g.AddEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
				touchedSet[u.Edge.From] = true
				touchedSet[u.Edge.To] = true
			}
		case DeleteEdge:
			if g.RemoveEdge(u.Edge.From, u.Edge.Label, u.Edge.To) {
				touchedSet[u.Edge.From] = true
				touchedSet[u.Edge.To] = true
			}
		case InsertVertex:
			id := g.AddVertex(u.Label, u.Type)
			u.Edge.From = id
			touchedSet[id] = true
		case DeleteVertex:
			if g.Live(u.Edge.From) {
				// Neighbours of a deleted vertex lose paths through it.
				for _, he := range g.Out(u.Edge.From) {
					touchedSet[he.To] = true
				}
				for _, he := range g.In(u.Edge.From) {
					touchedSet[he.To] = true
				}
				g.RemoveVertex(u.Edge.From)
			}
		}
	}
	touched := make([]VertexID, 0, len(touchedSet))
	for v := range touchedSet {
		if g.Live(v) {
			touched = append(touched, v)
		}
	}
	return touched
}

// RandomBatch builds a ΔG with n/2 edge deletions sampled from the live
// edges of g and n/2 insertions of fresh edges between random live vertices
// reusing existing edge labels, so that |G| stays (approximately) unchanged
// as in Exp-4. The batch is not applied.
func RandomBatch(g *Graph, rng *mat.RNG, n int) Batch {
	var edges []Edge
	g.Edges(func(e Edge) { edges = append(edges, e) })
	var ids []VertexID
	g.Vertices(func(v Vertex) { ids = append(ids, v.ID) })
	labels := g.EdgeLabels()
	if len(edges) == 0 || len(ids) < 2 || len(labels) == 0 {
		return nil
	}
	half := n / 2
	batch := make(Batch, 0, n)
	perm := rng.Perm(len(edges))
	for i := 0; i < half && i < len(perm); i++ {
		batch = append(batch, Update{Op: DeleteEdge, Edge: edges[perm[i]]})
	}
	for i := 0; i < n-half; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[rng.Intn(len(ids))]
		if from == to {
			to = ids[(rng.Intn(len(ids)-1)+1+indexOf(ids, from))%len(ids)]
		}
		batch = append(batch, Update{
			Op:   InsertEdge,
			Edge: Edge{From: from, Label: labels[rng.Intn(len(labels))], To: to},
		})
	}
	return batch
}

// RandomMixedBatch builds a ΔG of n updates drawing from all four update
// kinds: edge deletions and insertions (as RandomBatch), vertex
// insertions (fresh label, type sampled from the live types, wired to a
// random live vertex by a follow-up edge insertion so the newcomer is
// reachable), and vertex deletions sampled from the live vertices.
// Property-based IncExt oracles use it to exercise the delete and
// insert maintenance paths that edge-only batches never reach. The
// batch is not applied.
func RandomMixedBatch(g *Graph, rng *mat.RNG, n int) Batch {
	var edges []Edge
	g.Edges(func(e Edge) { edges = append(edges, e) })
	var ids []VertexID
	g.Vertices(func(v Vertex) { ids = append(ids, v.ID) })
	labels := g.EdgeLabels()
	types := g.Types()
	if len(ids) < 2 || len(labels) == 0 {
		return nil
	}
	batch := make(Batch, 0, n)
	nextEdge := 0
	inserted := 0
	perm := rng.Perm(len(edges))
	for len(batch) < n {
		switch rng.Intn(6) {
		case 0, 1: // insert edge between random live vertices
			from := ids[rng.Intn(len(ids))]
			to := ids[rng.Intn(len(ids))]
			if from == to {
				to = ids[(indexOf(ids, from)+1)%len(ids)]
			}
			batch = append(batch, Update{
				Op:   InsertEdge,
				Edge: Edge{From: from, Label: labels[rng.Intn(len(labels))], To: to},
			})
		case 2, 3: // delete a (distinct) existing edge
			if nextEdge >= len(perm) {
				continue
			}
			batch = append(batch, Update{Op: DeleteEdge, Edge: edges[perm[nextEdge]]})
			nextEdge++
		case 4: // insert a vertex and wire it in
			typ := ""
			if len(types) > 0 {
				typ = types[rng.Intn(len(types))]
			}
			label := typ + " new " + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26)))
			batch = append(batch, Update{Op: InsertVertex, Label: label, Type: typ})
			// Vertex ids are allocated sequentially, so the id the new
			// vertex will receive at Apply time is predictable; wire it to
			// a random live vertex so the newcomer is reachable. If a
			// shrinker later drops the InsertVertex, Apply skips the edge
			// (its endpoint is not live) instead of failing.
			predicted := VertexID(g.MaxVertexID() + inserted)
			inserted++
			batch = append(batch, Update{
				Op:   InsertEdge,
				Edge: Edge{From: ids[rng.Intn(len(ids))], Label: labels[rng.Intn(len(labels))], To: predicted},
			})
		default: // delete a random live vertex
			batch = append(batch, Update{
				Op:   DeleteVertex,
				Edge: Edge{From: ids[rng.Intn(len(ids))]},
			})
		}
	}
	return batch
}

func indexOf(ids []VertexID, v VertexID) int {
	for i, id := range ids {
		if id == v {
			return i
		}
	}
	return 0
}
