package graph

import "testing"

func TestCloneIsDeep(t *testing.T) {
	g := New()
	a := g.AddVertex("a", "t")
	b := g.AddVertex("b", "t")
	g.AddEdge(a, "e", b)

	c := g.Clone()
	if c.NumVertices() != 2 || c.NumEdges() != 1 {
		t.Fatalf("clone stats: %d vertices %d edges", c.NumVertices(), c.NumEdges())
	}
	// Mutating the original must not affect the clone and vice versa.
	g.RemoveEdge(a, "e", b)
	if c.NumEdges() != 1 {
		t.Fatal("clone shares edge storage with original")
	}
	nv := c.AddVertex("c", "t")
	c.AddEdge(a, "f", nv)
	if g.NumVertices() != 2 {
		t.Fatal("original gained clone's vertex")
	}
	c.RemoveVertex(b)
	if !g.Live(b) {
		t.Fatal("original lost clone's deleted vertex")
	}
	// Type index cloned correctly.
	if got := len(c.VerticesOfType("t")); got != 2 { // a and nv; b deleted
		t.Fatalf("clone type index = %d", got)
	}
}

func TestMarkLabel(t *testing.T) {
	if MarkLabel("x", true) != "x" || MarkLabel("x", false) != "^x" {
		t.Fatal("MarkLabel wrong")
	}
}

func TestSteps(t *testing.T) {
	g := New()
	a := g.AddVertex("a", "")
	b := g.AddVertex("b", "")
	g.AddEdge(a, "e", b)
	sa := g.Steps(nil, a)
	if len(sa) != 1 || !sa[0].Forward || sa[0].To != b {
		t.Fatalf("steps from a: %+v", sa)
	}
	sb := g.Steps(nil, b)
	if len(sb) != 1 || sb[0].Forward || sb[0].To != a {
		t.Fatalf("steps from b: %+v", sb)
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	a := g.AddVertex("hub", "t1")
	for i := 0; i < 5; i++ {
		v := g.AddVertex("leaf", "t2")
		g.AddEdge(a, "e", v)
	}
	iso := g.AddVertex("island", "t2")
	_ = iso
	st := g.ComputeStats()
	if st.Vertices != 7 || st.Edges != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Components != 2 {
		t.Fatalf("components = %d, want 2", st.Components)
	}
	if st.MaxDegree != 5 {
		t.Fatalf("max degree = %d", st.MaxDegree)
	}
	if st.Types != 2 {
		t.Fatalf("types = %d", st.Types)
	}
	if st.DegreeHist[0] != 1 { // the island
		t.Fatalf("degree histogram = %v", st.DegreeHist)
	}
	if st.DegreeHist[1] != 5 { // the leaves
		t.Fatalf("degree histogram = %v", st.DegreeHist)
	}
}

func TestTopLabels(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddVertex("common", "")
	}
	g.AddVertex("rare", "")
	top := g.TopLabels(1)
	if len(top) != 1 || top[0].Label != "common" || top[0].Count != 3 {
		t.Fatalf("top = %+v", top)
	}
}
