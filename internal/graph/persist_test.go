package graph

import (
	"bytes"
	"reflect"
	"testing"

	"semjoin/internal/mat"
)

// scrambledGraph builds a graph with deletion history, so vertex-slot
// holes, swap-removed adjacency order and a swap-removed type index
// are all present.
func scrambledGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 20; i++ {
		typ := "even"
		if i%2 == 1 {
			typ = "odd"
		}
		g.AddVertex("v"+string(rune('a'+i)), typ)
	}
	rng := mat.NewRNG(7)
	labels := []string{"likes", "owns", "near"}
	for i := 0; i < 60; i++ {
		from := VertexID(rng.Intn(20))
		to := VertexID(rng.Intn(20))
		if from == to {
			continue
		}
		if _, err := g.AddEdge(from, labels[rng.Intn(3)], to); err != nil {
			t.Fatal(err)
		}
	}
	// History-dependent state: removals reorder adjacency and byType.
	g.RemoveVertex(3)
	g.RemoveVertex(8)
	g.RemoveEdge(1, "likes", 2)
	g.Edges(func(e Edge) {}) // touch iteration before save
	return g
}

func TestGraphSaveLoadExactFidelity(t *testing.T) {
	g := scrambledGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, got) {
		t.Fatalf("loaded graph differs from original:\n%+v\nvs\n%+v", g, got)
	}
	// Future behaviour identical: the next allocated id matches, and a
	// re-save is byte-identical.
	if id1, id2 := g.AddVertex("x", "even"), got.AddVertex("x", "even"); id1 != id2 {
		t.Fatalf("post-load id allocation diverged: %d vs %d", id1, id2)
	}
	var b1, b2 bytes.Buffer
	if err := g.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := got.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("re-saved graphs diverge")
	}
}

func TestGraphLoadRejectsCorrupt(t *testing.T) {
	g := scrambledGraph(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("Load accepted truncation at %d", cut)
		}
	}
}

func TestBatchSaveLoadRoundTrip(t *testing.T) {
	g := scrambledGraph(t)
	rng := mat.NewRNG(11)
	b := RandomMixedBatch(g, rng, 25)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("batch round-trip mismatch")
	}
	// Replay equivalence: applying the decoded batch to a clone touches
	// the same vertices and yields the same graph bytes.
	g2 := g.Clone()
	t1 := b.Apply(g)
	t2 := got.Apply(g2)
	if len(t1) != len(t2) {
		t.Fatalf("touched sets differ: %d vs %d", len(t1), len(t2))
	}
	var b1, b2 bytes.Buffer
	if err := g.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("replayed graphs diverge")
	}
	if _, err := LoadBatch(bytes.NewReader(buf.Bytes()[:8])); err == nil {
		t.Fatal("LoadBatch accepted truncated input")
	}
}
