package graph

import (
	"testing"

	"semjoin/internal/mat"
)

// refGraph is a deliberately naive reference implementation used for
// model-based testing: edges in a map, no adjacency lists.
type refGraph struct {
	labels  map[VertexID]string
	types   map[VertexID]string
	edges   map[[3]string]bool // from|label|to encoded
	nextID  VertexID
	deleted map[VertexID]bool
}

func newRefGraph() *refGraph {
	return &refGraph{
		labels: map[VertexID]string{}, types: map[VertexID]string{},
		edges: map[[3]string]bool{}, deleted: map[VertexID]bool{},
	}
}

func ekey(from VertexID, label string, to VertexID) [3]string {
	return [3]string{itoa(int(from)), label, itoa(int(to))}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func (r *refGraph) addVertex(label, typ string) VertexID {
	id := r.nextID
	r.nextID++
	r.labels[id] = label
	r.types[id] = typ
	return id
}

func (r *refGraph) live(v VertexID) bool {
	_, ok := r.labels[v]
	return ok && !r.deleted[v]
}

func (r *refGraph) addEdge(from VertexID, label string, to VertexID) {
	if r.live(from) && r.live(to) {
		r.edges[ekey(from, label, to)] = true
	}
}

func (r *refGraph) removeEdge(from VertexID, label string, to VertexID) {
	delete(r.edges, ekey(from, label, to))
}

func (r *refGraph) removeVertex(v VertexID) {
	if !r.live(v) {
		return
	}
	r.deleted[v] = true
	for k := range r.edges {
		if k[0] == itoa(int(v)) || k[2] == itoa(int(v)) {
			delete(r.edges, k)
		}
	}
}

func (r *refGraph) numEdges() int { return len(r.edges) }

func (r *refGraph) numVertices() int {
	n := 0
	for v := range r.labels {
		if !r.deleted[v] {
			n++
		}
	}
	return n
}

// TestGraphModelBased drives the real graph and the reference with the
// same random operation stream and compares observable state.
func TestGraphModelBased(t *testing.T) {
	rng := mat.NewRNG(99)
	g := New()
	ref := newRefGraph()
	var ids []VertexID

	labels := []string{"a", "b", "c"}
	for step := 0; step < 4000; step++ {
		op := rng.Intn(10)
		switch {
		case op < 3 || len(ids) < 2: // add vertex
			l := labels[rng.Intn(len(labels))]
			gv := g.AddVertex(l, "t")
			rv := ref.addVertex(l, "t")
			if gv != rv {
				t.Fatalf("step %d: vertex ids diverged %d vs %d", step, gv, rv)
			}
			ids = append(ids, gv)
		case op < 7: // add edge
			from := ids[rng.Intn(len(ids))]
			to := ids[rng.Intn(len(ids))]
			l := labels[rng.Intn(len(labels))]
			if g.Live(from) && g.Live(to) {
				g.AddEdge(from, l, to)
			}
			ref.addEdge(from, l, to)
		case op < 9: // remove edge
			from := ids[rng.Intn(len(ids))]
			to := ids[rng.Intn(len(ids))]
			l := labels[rng.Intn(len(labels))]
			g.RemoveEdge(from, l, to)
			ref.removeEdge(from, l, to)
		default: // remove vertex (rarely)
			if rng.Intn(4) == 0 {
				v := ids[rng.Intn(len(ids))]
				g.RemoveVertex(v)
				ref.removeVertex(v)
			}
		}

		if g.NumEdges() != ref.numEdges() {
			t.Fatalf("step %d: edges %d vs ref %d", step, g.NumEdges(), ref.numEdges())
		}
		if g.NumVertices() != ref.numVertices() {
			t.Fatalf("step %d: vertices %d vs ref %d", step, g.NumVertices(), ref.numVertices())
		}
	}

	// Full edge-set equality at the end.
	got := map[[3]string]bool{}
	g.Edges(func(e Edge) { got[ekey(e.From, e.Label, e.To)] = true })
	if len(got) != len(ref.edges) {
		t.Fatalf("edge sets differ in size: %d vs %d", len(got), len(ref.edges))
	}
	for k := range ref.edges {
		if !got[k] {
			t.Fatalf("edge %v missing from graph", k)
		}
	}
	// Adjacency consistency: undirected degree sums to 2×edges.
	total := 0
	g.Vertices(func(v Vertex) { total += g.Degree(v.ID) })
	if total != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2×%d", total, g.NumEdges())
	}
}
