package graph

import (
	"sync"
	"testing"

	"semjoin/internal/mat"
)

// buildFigure1 reconstructs (a fragment of) the paper's Figure 1 graph:
// products pid1..pid4, companies, countries, types, customers.
func buildFigure1(t *testing.T) (*Graph, map[string]VertexID) {
	t.Helper()
	g := New()
	v := map[string]VertexID{}
	add := func(label, typ string) {
		v[label] = g.AddVertex(label, typ)
	}
	add("pid1", "product")
	add("pid2", "product")
	add("pid3", "product")
	add("pid4", "product")
	add("company1", "company")
	add("company2", "company")
	add("UK", "country")
	add("US", "country")
	add("Funds", "category")
	add("Stocks", "category")
	add("ETF", "category")
	add("Trust", "category")
	add("Bob1", "person")
	add("Bob3", "person")
	add("Ada", "person")

	e := func(a, label, b string) { g.AddEdge(v[a], label, v[b]) }
	e("pid1", "based_on", "pid2")
	e("pid1", "based_on", "pid3")
	e("pid1", "type", "Funds")
	e("pid2", "type", "ETF")
	e("pid3", "type", "Trust")
	e("pid4", "type", "Stocks")
	e("company1", "issue", "pid2")
	e("company1", "issue", "pid4")
	e("company2", "issue", "pid4")
	e("company1", "regloc", "UK")
	e("company2", "regloc", "US")
	e("Bob1", "invest", "pid1")
	e("Bob3", "invest", "pid4")
	e("Ada", "invest", "pid4")
	return g, v
}

func TestAddVertexEdgeBasics(t *testing.T) {
	g, v := buildFigure1(t)
	if g.NumVertices() != 15 {
		t.Fatalf("NumVertices = %d, want 15", g.NumVertices())
	}
	if g.NumEdges() != 14 {
		t.Fatalf("NumEdges = %d, want 14", g.NumEdges())
	}
	if g.Label(v["pid1"]) != "pid1" || g.Type(v["pid1"]) != "product" {
		t.Fatal("vertex label/type wrong")
	}
	if len(g.Out(v["pid1"])) != 3 {
		t.Fatalf("pid1 out-degree = %d, want 3", len(g.Out(v["pid1"])))
	}
	if len(g.In(v["pid4"])) != 4 {
		t.Fatalf("pid4 in-degree = %d, want 4", len(g.In(v["pid4"])))
	}
}

func TestDuplicateEdgeIsNoop(t *testing.T) {
	g := New()
	a := g.AddVertex("a", "")
	b := g.AddVertex("b", "")
	if ok, err := g.AddEdge(a, "l", b); err != nil || !ok {
		t.Fatalf("first insert should succeed: ok=%v err=%v", ok, err)
	}
	if ok, err := g.AddEdge(a, "l", b); err != nil || ok {
		t.Fatalf("duplicate insert should be a no-op: ok=%v err=%v", ok, err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	// Parallel edge with a different label is allowed.
	if ok, err := g.AddEdge(a, "m", b); err != nil || !ok {
		t.Fatalf("parallel edge with new label should succeed: ok=%v err=%v", ok, err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g, v := buildFigure1(t)
	if !g.RemoveEdge(v["pid1"], "based_on", v["pid2"]) {
		t.Fatal("RemoveEdge should succeed")
	}
	if g.RemoveEdge(v["pid1"], "based_on", v["pid2"]) {
		t.Fatal("second RemoveEdge should fail")
	}
	if g.NumEdges() != 13 {
		t.Fatalf("NumEdges = %d, want 13", g.NumEdges())
	}
	for _, he := range g.In(v["pid2"]) {
		if he.To == v["pid1"] && he.Label == "based_on" {
			t.Fatal("in-adjacency not cleaned up")
		}
	}
}

func TestRemoveVertex(t *testing.T) {
	g, v := buildFigure1(t)
	before := g.NumEdges()
	deg := g.Degree(v["pid4"])
	g.RemoveVertex(v["pid4"])
	if g.Live(v["pid4"]) {
		t.Fatal("vertex should be dead")
	}
	if g.NumEdges() != before-deg {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), before-deg)
	}
	for _, he := range g.Out(v["company1"]) {
		if he.To == v["pid4"] {
			t.Fatal("dangling out-edge to deleted vertex")
		}
	}
	ids := g.VerticesOfType("product")
	if len(ids) != 3 {
		t.Fatalf("products after delete = %d, want 3", len(ids))
	}
}

func TestVerticesOfTypeAndTypes(t *testing.T) {
	g, _ := buildFigure1(t)
	prods := g.VerticesOfType("product")
	if len(prods) != 4 {
		t.Fatalf("products = %d", len(prods))
	}
	for i := 1; i < len(prods); i++ {
		if prods[i-1] >= prods[i] {
			t.Fatal("VerticesOfType not sorted")
		}
	}
	ts := g.Types()
	want := []string{"category", "company", "country", "person", "product"}
	if len(ts) != len(want) {
		t.Fatalf("Types = %v", ts)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("Types = %v, want %v", ts, want)
		}
	}
}

func TestNeighborsUndirected(t *testing.T) {
	g, v := buildFigure1(t)
	ns := g.Neighbors(nil, v["pid2"])
	// pid2: in from pid1 (based_on), in from company1 (issue), out to ETF (type).
	if len(ns) != 3 {
		t.Fatalf("pid2 undirected degree = %d, want 3", len(ns))
	}
}

func TestWithinKHops(t *testing.T) {
	g, v := buildFigure1(t)
	// pid1 -based_on-> pid2 <-issue- company1 -regloc-> UK : distance 3.
	if d := g.WithinKHops(v["pid1"], v["UK"], 3); d != 3 {
		t.Fatalf("dist(pid1, UK) = %d, want 3", d)
	}
	if d := g.WithinKHops(v["pid1"], v["UK"], 2); d != -1 {
		t.Fatalf("dist within 2 = %d, want -1", d)
	}
	if d := g.WithinKHops(v["pid1"], v["pid1"], 0); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
	// Bob3 and Ada are both 2 hops apart through pid4.
	if d := g.WithinKHops(v["Bob3"], v["Ada"], 5); d != 2 {
		t.Fatalf("dist(Bob3, Ada) = %d, want 2", d)
	}
	// Disconnected pair.
	iso := g.AddVertex("island", "")
	if d := g.WithinKHops(v["pid1"], iso, 10); d != -1 {
		t.Fatalf("disconnected distance = %d, want -1", d)
	}
}

func TestWithinKHopsMatchesBFS(t *testing.T) {
	// Cross-check bidirectional BFS against a plain BFS on a random graph.
	rng := mat.NewRNG(5)
	g := New()
	const n = 60
	for i := 0; i < n; i++ {
		g.AddVertex("v", "")
	}
	for i := 0; i < 120; i++ {
		g.AddEdge(VertexID(rng.Intn(n)), "e", VertexID(rng.Intn(n)))
	}
	bfs := func(s VertexID) map[VertexID]int {
		dist := map[VertexID]int{s: 0}
		front := []VertexID{s}
		for len(front) > 0 {
			var next []VertexID
			for _, x := range front {
				for _, he := range g.Neighbors(nil, x) {
					if _, ok := dist[he.To]; !ok {
						dist[he.To] = dist[x] + 1
						next = append(next, he.To)
					}
				}
			}
			front = next
		}
		return dist
	}
	for s := VertexID(0); s < 5; s++ {
		dist := bfs(s)
		for v := VertexID(0); v < n; v++ {
			want, ok := dist[v]
			for k := 0; k <= 6; k++ {
				got := g.WithinKHops(s, v, k)
				switch {
				case ok && want <= k:
					if got != want {
						t.Fatalf("dist(%d,%d,k=%d) = %d, want %d", s, v, k, got, want)
					}
				default:
					if got != -1 {
						t.Fatalf("dist(%d,%d,k=%d) = %d, want -1 (true %d, ok=%v)", s, v, k, got, want, ok)
					}
				}
			}
		}
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g, v := buildFigure1(t)
	n0 := g.KHopNeighborhood([]VertexID{v["pid1"]}, 0)
	if len(n0) != 1 || !n0[v["pid1"]] {
		t.Fatalf("0-hop = %v", n0)
	}
	n1 := g.KHopNeighborhood([]VertexID{v["pid1"]}, 1)
	// pid1 ~ pid2, pid3, Funds, Bob1 plus itself.
	if len(n1) != 5 {
		t.Fatalf("1-hop size = %d, want 5", len(n1))
	}
	all := g.KHopNeighborhood([]VertexID{v["pid1"]}, 10)
	if len(all) != 15 {
		t.Fatalf("10-hop should reach whole component: %d", len(all))
	}
}

func TestSimplePaths(t *testing.T) {
	g, v := buildFigure1(t)
	count := 0
	maxLen := 0
	g.SimplePaths(v["pid1"], 2, func(p Path) {
		count++
		if p.Len() > maxLen {
			maxLen = p.Len()
		}
		if p.Start() != v["pid1"] {
			t.Fatal("path does not start at source")
		}
		seen := map[VertexID]bool{}
		for _, u := range p.Vertices {
			if seen[u] {
				t.Fatal("path is not simple")
			}
			seen[u] = true
		}
	})
	if count == 0 || maxLen != 2 {
		t.Fatalf("count=%d maxLen=%d", count, maxLen)
	}
	// k=0 yields nothing.
	g.SimplePaths(v["pid1"], 0, func(Path) { t.Fatal("unexpected path at k=0") })
}

func TestSimplePathsCountOnSmallClique(t *testing.T) {
	// Complete graph K4: from any vertex, simple paths of length 1..3:
	// 3 + 3*2 + 3*2*1 = 15.
	g := New()
	var ids []VertexID
	for i := 0; i < 4; i++ {
		ids = append(ids, g.AddVertex("v", ""))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(ids[i], "e", ids[j])
		}
	}
	count := 0
	g.SimplePaths(ids[0], 3, func(Path) { count++ })
	if count != 15 {
		t.Fatalf("K4 simple paths = %d, want 15", count)
	}
}

func TestRandomWalk(t *testing.T) {
	g, v := buildFigure1(t)
	rng := mat.NewRNG(1)
	p := g.RandomWalk(rng, v["pid1"], 8)
	if p.Start() != v["pid1"] {
		t.Fatal("walk must start at start")
	}
	if p.Len() > 8 {
		t.Fatalf("walk too long: %d", p.Len())
	}
	for i := 0; i+1 < len(p.Vertices); i++ {
		// Each consecutive pair must be connected, with the label marked
		// according to the traversal direction.
		ok := false
		for _, st := range g.Steps(nil, p.Vertices[i]) {
			if st.To == p.Vertices[i+1] && MarkLabel(st.Label, st.Forward) == p.EdgeLabels[i] {
				ok = true
			}
		}
		if !ok {
			t.Fatal("walk traverses a non-edge")
		}
	}
	s := g.WalkSentence(p)
	if len(s) != 2*len(p.Vertices)-1 {
		t.Fatalf("sentence length = %d", len(s))
	}
	// Isolated vertex: walk stops immediately.
	iso := g.AddVertex("iso", "")
	if got := g.RandomWalk(rng, iso, 5); got.Len() != 0 {
		t.Fatal("walk from isolated vertex should have length 0")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{Vertices: []VertexID{1, 2}, EdgeLabels: []string{"a"}}
	q := p.Extend("b", 3)
	if q.Len() != 2 || q.End() != 3 || p.Len() != 1 {
		t.Fatal("Extend must not mutate the receiver")
	}
	if !q.Contains(2) || q.Contains(9) {
		t.Fatal("Contains wrong")
	}
	c := q.Clone()
	c.Vertices[0] = 99
	if q.Vertices[0] == 99 {
		t.Fatal("Clone should deep-copy")
	}
}

func TestBatchApply(t *testing.T) {
	g, v := buildFigure1(t)
	b := Batch{
		{Op: DeleteEdge, Edge: Edge{From: v["pid1"], Label: "type", To: v["Funds"]}},
		{Op: InsertEdge, Edge: Edge{From: v["pid3"], Label: "issue", To: v["company2"]}},
		{Op: InsertVertex, Label: "Germany", Type: "country"},
	}
	touched := b.Apply(g)
	if len(touched) == 0 {
		t.Fatal("expected touched vertices")
	}
	if g.NumEdges() != 14 { // -1 +1
		t.Fatalf("NumEdges = %d, want 14", g.NumEdges())
	}
	// Inserted vertex id propagated back into the batch.
	if b[2].Edge.From == 0 {
		t.Fatal("InsertVertex should record the new id")
	}
	if g.Label(b[2].Edge.From) != "Germany" {
		t.Fatal("inserted vertex missing")
	}
}

func TestBatchDeleteVertexTouchesNeighbors(t *testing.T) {
	g, v := buildFigure1(t)
	b := Batch{{Op: DeleteVertex, Edge: Edge{From: v["pid4"]}}}
	touched := b.Apply(g)
	wantTouched := map[VertexID]bool{
		v["company1"]: true, v["company2"]: true,
		v["Stocks"]: true, v["Bob3"]: true, v["Ada"]: true,
	}
	for _, x := range touched {
		if !wantTouched[x] {
			t.Fatalf("unexpected touched vertex %d", x)
		}
		delete(wantTouched, x)
	}
	if len(wantTouched) != 0 {
		t.Fatalf("missing touched vertices: %v", wantTouched)
	}
}

func TestRandomBatchPreservesSize(t *testing.T) {
	g, _ := buildFigure1(t)
	rng := mat.NewRNG(3)
	before := g.NumEdges()
	b := RandomBatch(g, rng, 6)
	if len(b) != 6 {
		t.Fatalf("batch size = %d", len(b))
	}
	b.Apply(g)
	after := g.NumEdges()
	if diff := after - before; diff < -1 || diff > 1 {
		// Insertions may occasionally collide with existing edges, so allow
		// slight shrinkage but not drift.
		if diff < -3 {
			t.Fatalf("graph size drifted: %d -> %d", before, after)
		}
	}
}

func TestEdgeLabels(t *testing.T) {
	g, _ := buildFigure1(t)
	labels := g.EdgeLabels()
	want := []string{"based_on", "invest", "issue", "regloc", "type"}
	if len(labels) != len(want) {
		t.Fatalf("EdgeLabels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("EdgeLabels = %v, want %v", labels, want)
		}
	}
}

func TestAddEdgeMissingVertexError(t *testing.T) {
	g := New()
	a := g.AddVertex("a", "")
	// Regression: an out-of-range endpoint used to panic the process.
	if ok, err := g.AddEdge(a, "l", VertexID(99)); err == nil || ok {
		t.Fatalf("edge to missing vertex: ok=%v err=%v, want error", ok, err)
	}
	if ok, err := g.AddEdge(VertexID(-1), "l", a); err == nil || ok {
		t.Fatalf("edge from negative vertex: ok=%v err=%v, want error", ok, err)
	}
	b := g.AddVertex("b", "")
	g.RemoveVertex(b)
	if ok, err := g.AddEdge(a, "l", b); err == nil || ok {
		t.Fatalf("edge to deleted vertex: ok=%v err=%v, want error", ok, err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("failed inserts must not change the graph: NumEdges = %d", g.NumEdges())
	}
}

func TestConcurrentReadersAfterMutation(t *testing.T) {
	// The documented regime of every parallel worker pool: concurrent
	// readers are safe once mutation has stopped. Run under -race.
	g, _ := buildFigure1(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			total := 0
			g.Vertices(func(v Vertex) {
				total += len(g.Out(v.ID)) + len(g.In(v.ID))
				_ = g.Label(v.ID)
				_ = g.Type(v.ID)
			})
			if total == 0 {
				t.Error("reader saw an empty graph")
			}
			reach := g.KHopNeighborhood([]VertexID{VertexID(seed % int64(g.NumVertices()))}, 2)
			_ = reach
		}(int64(w))
	}
	wg.Wait()
}
