package graph

import (
	"fmt"
	"io"
	"sort"

	"semjoin/internal/bin"
)

// Save persists the graph with full structural fidelity: vertex slots
// (including deleted ones, so future AddVertex calls allocate the same
// ids), adjacency lists in their exact order (removeHalf swap-removes,
// so order is history-dependent and path enumeration depends on it),
// and the by-type index in its exact order. A loaded graph is
// therefore indistinguishable from the original under traversal AND
// under future updates — the property snapshot-plus-WAL-replay
// durability needs for replay determinism.
func (g *Graph) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("graph", 1)
	w.Int(len(g.vertices))
	for _, v := range g.vertices {
		w.String(v.Label)
		w.String(v.Type)
		w.Bool(v.deleted)
	}
	for _, adj := range [][][]HalfEdge{g.out, g.in} {
		for _, hs := range adj {
			w.Int(len(hs))
			for _, he := range hs {
				w.String(he.Label)
				w.I64(int64(he.To))
			}
		}
	}
	w.Int(g.numEdges)
	keys := make([]string, 0, len(g.byType))
	for k := range g.byType {
		if len(g.byType[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		ids := g.byType[k]
		w.Int(len(ids))
		for _, id := range ids {
			w.I64(int64(id))
		}
	}
	return w.Err()
}

// Load restores a graph written by Save.
func Load(in io.Reader) (*Graph, error) {
	r := bin.NewReader(in)
	if v := r.Header("graph"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", v)
	}
	n := r.Len()
	if err := r.Err(); err != nil {
		return nil, err
	}
	g := New()
	g.vertices = make([]Vertex, 0, min(n, 1<<20))
	for i := 0; i < n; i++ {
		v := Vertex{ID: VertexID(i), Label: r.String(), Type: r.String(), deleted: r.Bool()}
		if r.Err() != nil {
			return nil, r.Err()
		}
		g.vertices = append(g.vertices, v)
	}
	readAdj := func() [][]HalfEdge {
		adj := make([][]HalfEdge, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m := r.Len()
			for j := 0; j < m && r.Err() == nil; j++ {
				he := HalfEdge{Label: r.String(), To: VertexID(r.I64())}
				if r.Err() == nil && (he.To < 0 || int(he.To) >= n) {
					return nil
				}
				adj[i] = append(adj[i], he)
			}
		}
		return adj
	}
	g.out = readAdj()
	g.in = readAdj()
	if r.Err() == nil && (g.out == nil || g.in == nil) {
		return nil, fmt.Errorf("graph: adjacency references vertex outside [0,%d)", n)
	}
	g.numEdges = r.Int()
	nk := r.Len()
	for i := 0; i < nk && r.Err() == nil; i++ {
		k := r.String()
		m := r.Len()
		ids := make([]VertexID, 0, min(m, 1<<20))
		for j := 0; j < m && r.Err() == nil; j++ {
			id := VertexID(r.I64())
			if r.Err() == nil && (id < 0 || int(id) >= n) {
				return nil, fmt.Errorf("graph: type index references vertex %d outside [0,%d)", id, n)
			}
			ids = append(ids, id)
		}
		g.byType[k] = ids
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if g.numEdges < 0 {
		return nil, fmt.Errorf("graph: negative edge count %d", g.numEdges)
	}
	return g, nil
}

// Save persists an update batch ΔG, so a write-ahead log can replay it.
func (b Batch) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("batch", 1)
	w.Int(len(b))
	for _, u := range b {
		w.Int(int(u.Op))
		w.I64(int64(u.Edge.From))
		w.String(u.Edge.Label)
		w.I64(int64(u.Edge.To))
		w.String(u.Label)
		w.String(u.Type)
	}
	return w.Err()
}

// LoadBatch restores a batch written by Batch.Save.
func LoadBatch(in io.Reader) (Batch, error) {
	r := bin.NewReader(in)
	if v := r.Header("batch"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("graph: unsupported batch version %d", v)
	}
	n := r.Len()
	if err := r.Err(); err != nil {
		return nil, err
	}
	b := make(Batch, 0, min(n, 1<<20))
	for i := 0; i < n; i++ {
		u := Update{
			Op: UpdateOp(r.Int()),
			Edge: Edge{
				From: VertexID(r.I64()),
			},
		}
		u.Edge.Label = r.String()
		u.Edge.To = VertexID(r.I64())
		u.Label = r.String()
		u.Type = r.String()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if u.Op < InsertEdge || u.Op > DeleteVertex {
			return nil, fmt.Errorf("graph: unknown update op %d", u.Op)
		}
		b = append(b, u)
	}
	return b, nil
}
