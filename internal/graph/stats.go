package graph

import "sort"

// Stats summarises a graph's structure; rextprofile prints it and the
// dataset generators' tests assert on it.
type Stats struct {
	Vertices   int
	Edges      int
	Types      int
	Components int
	MaxDegree  int
	AvgDegree  float64
	// DegreeHist counts vertices per undirected-degree bucket
	// (0, 1, 2, 3–4, 5–8, 9–16, 17+).
	DegreeHist [7]int
}

// ComputeStats walks the graph once and returns its statistics.
func (g *Graph) ComputeStats() Stats {
	st := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges(), Types: len(g.Types())}
	var total int
	g.Vertices(func(v Vertex) {
		d := g.Degree(v.ID)
		total += d
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		st.DegreeHist[degreeBucket(d)]++
	})
	if st.Vertices > 0 {
		st.AvgDegree = float64(total) / float64(st.Vertices)
	}
	st.Components = g.countComponents()
	return st
}

func degreeBucket(d int) int {
	switch {
	case d == 0:
		return 0
	case d == 1:
		return 1
	case d == 2:
		return 2
	case d <= 4:
		return 3
	case d <= 8:
		return 4
	case d <= 16:
		return 5
	}
	return 6
}

// countComponents returns the number of connected components (undirected)
// via iterative BFS.
func (g *Graph) countComponents() int {
	seen := make(map[VertexID]bool, g.NumVertices())
	components := 0
	var scratch []HalfEdge
	g.Vertices(func(v Vertex) {
		if seen[v.ID] {
			return
		}
		components++
		queue := []VertexID{v.ID}
		seen[v.ID] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			scratch = g.Neighbors(scratch[:0], cur)
			for _, he := range scratch {
				if !seen[he.To] {
					seen[he.To] = true
					queue = append(queue, he.To)
				}
			}
		}
	})
	return components
}

// TopLabels returns the n most frequent vertex labels with their counts
// (ties alphabetical), a quick vocabulary profile.
func (g *Graph) TopLabels(n int) []LabelCount {
	counts := map[string]int{}
	g.Vertices(func(v Vertex) { counts[v.Label]++ })
	out := make([]LabelCount, 0, len(counts))
	for l, c := range counts {
		out = append(out, LabelCount{Label: l, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// LabelCount pairs a label with its occurrence count.
type LabelCount struct {
	Label string
	Count int
}
