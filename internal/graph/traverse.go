package graph

import "semjoin/internal/mat"

// ReverseMark prefixes the label of an edge traversed against its
// direction. Path patterns thereby distinguish drug→efficacy→symptom from
// symptom←efficacy←drug, which the paper's q1 case study relies on.
const ReverseMark = "^"

// MarkLabel returns the traversal token for an edge label: the label
// itself when traversed forward, ReverseMark+label when traversed against
// the edge direction.
func MarkLabel(label string, forward bool) string {
	if forward {
		return label
	}
	return ReverseMark + label
}

// Step is one undirected traversal option from a vertex: the edge label,
// the vertex on the other side, and whether the edge is traversed in its
// stored direction.
type Step struct {
	Label   string
	To      VertexID
	Forward bool
}

// Steps appends every undirected traversal option from v to dst and
// returns the extended slice.
func (g *Graph) Steps(dst []Step, v VertexID) []Step {
	g.mustLive(v)
	for _, he := range g.out[v] {
		dst = append(dst, Step{Label: he.Label, To: he.To, Forward: true})
	}
	for _, he := range g.in[v] {
		dst = append(dst, Step{Label: he.Label, To: he.To, Forward: false})
	}
	return dst
}

// Path is a simple undirected path in G, recorded as the visited vertices
// plus the direction-marked labels of the traversed edges
// (len(EdgeLabels) == len(Vertices)-1). The paper's path pattern pρ (§III)
// is exactly EdgeLabels.
type Path struct {
	Vertices   []VertexID
	EdgeLabels []string
}

// Start returns the first vertex of the path.
func (p Path) Start() VertexID { return p.Vertices[0] }

// End returns the last vertex of the path.
func (p Path) End() VertexID { return p.Vertices[len(p.Vertices)-1] }

// Len returns the number of edges on the path.
func (p Path) Len() int { return len(p.EdgeLabels) }

// Clone returns a deep copy of p.
func (p Path) Clone() Path {
	return Path{
		Vertices:   append([]VertexID(nil), p.Vertices...),
		EdgeLabels: append([]string(nil), p.EdgeLabels...),
	}
}

// Extend returns a copy of p with one more hop appended.
func (p Path) Extend(label string, to VertexID) Path {
	q := Path{
		Vertices:   make([]VertexID, len(p.Vertices), len(p.Vertices)+1),
		EdgeLabels: make([]string, len(p.EdgeLabels), len(p.EdgeLabels)+1),
	}
	copy(q.Vertices, p.Vertices)
	copy(q.EdgeLabels, p.EdgeLabels)
	q.Vertices = append(q.Vertices, to)
	q.EdgeLabels = append(q.EdgeLabels, label)
	return q
}

// Contains reports whether v already appears on the path (cycle check for
// simple paths).
func (p Path) Contains(v VertexID) bool {
	for _, u := range p.Vertices {
		if u == v {
			return true
		}
	}
	return false
}

// WithinKHops reports whether u and v are connected by an undirected path
// of length at most k, using bidirectional BFS (the link-join condition of
// §II-B / §IV-A). It returns the discovered distance, or -1 when the
// vertices are farther apart than k.
func (g *Graph) WithinKHops(u, v VertexID, k int) int {
	if !g.Live(u) || !g.Live(v) {
		return -1
	}
	if u == v {
		return 0
	}
	if k <= 0 {
		return -1
	}
	distU := map[VertexID]int{u: 0}
	distV := map[VertexID]int{v: 0}
	frontU := []VertexID{u}
	frontV := []VertexID{v}
	depthU, depthV := 0, 0
	var scratch []HalfEdge
	for depthU+depthV < k && (len(frontU) > 0 || len(frontV) > 0) {
		// Expand the smaller frontier for the usual bidirectional win.
		if len(frontV) == 0 || (len(frontU) <= len(frontV) && len(frontU) > 0) {
			depthU++
			var next []VertexID
			for _, x := range frontU {
				scratch = g.Neighbors(scratch[:0], x)
				for _, he := range scratch {
					y := he.To
					if _, ok := distU[y]; ok {
						continue
					}
					if dv, ok := distV[y]; ok && depthU+dv <= k {
						return depthU + dv
					}
					distU[y] = depthU
					next = append(next, y)
				}
			}
			frontU = next
		} else {
			depthV++
			var next []VertexID
			for _, x := range frontV {
				scratch = g.Neighbors(scratch[:0], x)
				for _, he := range scratch {
					y := he.To
					if _, ok := distV[y]; ok {
						continue
					}
					if du, ok := distU[y]; ok && depthV+du <= k {
						return depthV + du
					}
					distV[y] = depthV
					next = append(next, y)
				}
			}
			frontV = next
		}
	}
	return -1
}

// KHopNeighborhood returns the set of live vertices within k undirected
// hops of any seed, including the seeds themselves. IncExt uses it to find
// entity vertices whose extracted values may be affected by ΔG (§III-B).
func (g *Graph) KHopNeighborhood(seeds []VertexID, k int) map[VertexID]bool {
	reach := make(map[VertexID]bool, len(seeds))
	var front []VertexID
	for _, s := range seeds {
		if g.Live(s) && !reach[s] {
			reach[s] = true
			front = append(front, s)
		}
	}
	var scratch []HalfEdge
	for d := 0; d < k && len(front) > 0; d++ {
		var next []VertexID
		for _, x := range front {
			scratch = g.Neighbors(scratch[:0], x)
			for _, he := range scratch {
				if !reach[he.To] && g.Live(he.To) {
					reach[he.To] = true
					next = append(next, he.To)
				}
			}
		}
		front = next
	}
	return reach
}

// RandomWalk performs an undirected random walk of at most steps edges from
// start and returns the visited path. Dead ends terminate the walk early.
// Random walks feed the unsupervised training corpus for the LSTM language
// model Mρ (§III-A step 1).
func (g *Graph) RandomWalk(rng *mat.RNG, start VertexID, steps int) Path {
	p := Path{Vertices: []VertexID{start}}
	cur := start
	var scratch []Step
	for i := 0; i < steps; i++ {
		scratch = g.Steps(scratch[:0], cur)
		if len(scratch) == 0 {
			break
		}
		st := scratch[rng.Intn(len(scratch))]
		p.Vertices = append(p.Vertices, st.To)
		p.EdgeLabels = append(p.EdgeLabels, MarkLabel(st.Label, st.Forward))
		cur = st.To
	}
	return p
}

// WalkSentence renders a walk as the alternating label sequence
// (L(v0), L(e0), L(v1), ...) used as a training "sentence".
func (g *Graph) WalkSentence(p Path) []string {
	out := make([]string, 0, 2*len(p.Vertices))
	for i, v := range p.Vertices {
		if i > 0 {
			out = append(out, p.EdgeLabels[i-1])
		}
		out = append(out, g.Label(v))
	}
	return out
}

// SimplePaths enumerates every simple undirected path of length in [1, k]
// starting at v and calls fn for each. fn must not retain the path; clone
// it if needed. This exhaustive enumeration is the fallback the paper's
// LSTM guidance avoids; RExt calls it only for small neighbourhoods and for
// the RndPath baseline.
func (g *Graph) SimplePaths(v VertexID, k int, fn func(Path)) {
	if !g.Live(v) || k <= 0 {
		return
	}
	onPath := map[VertexID]bool{v: true}
	p := Path{Vertices: []VertexID{v}}
	var rec func(cur VertexID, depth int)
	var scratch [][]Step // per-depth scratch to avoid aliasing during recursion
	rec = func(cur VertexID, depth int) {
		if depth >= k {
			return
		}
		for len(scratch) <= depth {
			scratch = append(scratch, nil)
		}
		scratch[depth] = g.Steps(scratch[depth][:0], cur)
		neighbors := scratch[depth]
		for _, st := range neighbors {
			if onPath[st.To] {
				continue
			}
			p.Vertices = append(p.Vertices, st.To)
			p.EdgeLabels = append(p.EdgeLabels, MarkLabel(st.Label, st.Forward))
			onPath[st.To] = true
			fn(p)
			rec(st.To, depth+1)
			onPath[st.To] = false
			p.Vertices = p.Vertices[:len(p.Vertices)-1]
			p.EdgeLabels = p.EdgeLabels[:len(p.EdgeLabels)-1]
		}
	}
	rec(v, 0)
}
