package expr

import (
	"fmt"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/rel"
)

// WorkloadQuery is one query of the §V workload with its feature tags.
type WorkloadQuery struct {
	ID          string
	Collection  string
	SQL         string
	Link        bool // uses an l-join (otherwise enrichment)
	Dynamic     bool // semantic join over a sub-query
	MultiJoin   bool // more than one semantic join
	Negation    bool
	Aggregation bool
	WellBehaved bool // expected planner verdict
}

// Workload returns the 36 queries of §V: 6 per collection; 32 enrichment
// and 4 link joins; 4 dynamic; 10 with more than one semantic join; 17
// with negation; 4 with aggregation; 4 not well-behaved.
func Workload() []WorkloadQuery {
	var qs []WorkloadQuery
	add := func(q WorkloadQuery) {
		q.ID = fmt.Sprintf("%s-q%d", q.Collection, len(byColl(qs, q.Collection))+1)
		qs = append(qs, q)
	}

	// ---- Drugs (drug(cas, name), interact(cas1, cas2, type)) ----
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: true, Negation: true, SQL: `
		select cas, name, disease from drug e-join G <disease> as T
		where not T.disease = 'Influenza'`})
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: true, MultiJoin: true, Negation: true, SQL: `
		select T1.cas, T2.cas, T1.disease
		from drug e-join G <disease> as T1,
		     drug e-join G <disease> as T2,
		     interact
		where interact.cas1 = T1.cas and interact.cas2 = T2.cas
		  and interact.type = -1 and T1.disease = T2.disease
		  and not T1.cas = T2.cas`})
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: true, Aggregation: true, SQL: `
		select disease, count(*) as n from drug e-join G <disease> as T
		group by disease order by disease`})
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: true, Dynamic: true, Negation: true, SQL: `
		select cas, class
		from (select cas, name from drug where not name = 'Spinosad') e-join G <class> as T`})
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: true, Link: true, SQL: `
		select drug.cas, drug2.cas from drug l-join <G> drug as drug2
		where drug.cas = 'CAS-0000'`})
	add(WorkloadQuery{Collection: "Drugs", WellBehaved: false, MultiJoin: true, Negation: true, SQL: `
		select cas1, name, class
		from (select interact.cas1 as cas1, drug.name as name
		      from interact, drug
		      where drug.cas = interact.cas1 and interact.type = -1
		        and not drug.name = 'Warfarin') e-join G <class> as T`})

	// ---- FakeNews (fakenews(author, language)) ----
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: true, SQL: `
		select author, topic from fakenews e-join G <topic> as T
		where T.language = 'English'`})
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: true, Negation: true, SQL: `
		select author, country from fakenews e-join G <country> as T
		where not T.country = 'UK' and not T.country = 'US'`})
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: true, Aggregation: true, SQL: `
		select topic, count(*) as authors from fakenews e-join G <topic> as T
		group by topic order by topic`})
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: true, Dynamic: true, SQL: `
		select author, topic
		from (select author, language from fakenews where language = 'French') e-join G <topic> as T`})
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: true, MultiJoin: true, SQL: `
		select T1.author, T2.author, T1.topic
		from fakenews e-join G <topic> as T1, fakenews e-join G <topic> as T2
		where T1.topic = T2.topic and T1.language = 'English' and T2.language = 'German'`})
	add(WorkloadQuery{Collection: "FakeNews", WellBehaved: false, Negation: true, MultiJoin: true, SQL: `
		select author, country
		from (select f1.author as author, f2.author as peer
		      from fakenews as f1, fakenews as f2
		      where f1.language = f2.language and not f1.author = f2.author) e-join G <country> as T`})

	// ---- Movie (movie(mid, title, year)) ----
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, SQL: `
		select mid, title, director from movie e-join G <director> as T
		where T.year >= 1960`})
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, Negation: true, SQL: `
		select mid, genre from movie e-join G <genre> as T
		where not T.genre = 'Horror'`})
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, Aggregation: true, SQL: `
		select director, count(*) as films from movie e-join G <director> as T
		group by director order by films desc, director`})
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, MultiJoin: true, Negation: true, SQL: `
		select T1.mid, T2.mid, T1.director
		from movie e-join G <director> as T1, movie e-join G <director> as T2
		where T1.director = T2.director and T1.year < T2.year
		  and not T1.mid = T2.mid`})
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, Link: true, SQL: `
		select movie.mid, movie2.mid from movie l-join <G> movie as movie2
		where movie.mid = 'm0000' and not movie2.mid = 'm0000'`})
	add(WorkloadQuery{Collection: "Movie", WellBehaved: true, MultiJoin: true, SQL: `
		select T1.mid, T1.director, T1.city
		from movie e-join G <director, city> as T1
		where T1.city = 'London' or T1.city = 'Paris'`})

	// ---- MovKB (movie(mid, title)) ----
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: true, SQL: `
		select mid, country from movie e-join G <country> as T
		where T.country = 'UK'`})
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: true, Negation: true, SQL: `
		select mid, studio, language from movie e-join G <studio, language> as T
		where not T.language = 'English'`})
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: true, Dynamic: true, Negation: true, SQL: `
		select mid, country
		from (select mid, title from movie where not title = 'feature 000') e-join G <country> as T`})
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: true, MultiJoin: true, SQL: `
		select T1.mid, T2.mid
		from movie e-join G <studio> as T1, movie e-join G <studio> as T2
		where T1.studio = T2.studio and T1.mid < T2.mid`})
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: true, Negation: true, SQL: `
		select mid, studio from movie e-join G <studio> as T
		where not T.studio = 'Acme Corp' and not T.studio = 'Globex Corp'`})
	add(WorkloadQuery{Collection: "MovKB", WellBehaved: false, MultiJoin: true, SQL: `
		select mid, country
		from (select m1.mid as mid, m1.title as title, m2.mid as other
		      from movie as m1, movie as m2
		      where m1.mid < m2.mid and m1.title < m2.title) e-join G <country> as T`})

	// ---- Paper (dblp(pid, title)) ----
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, SQL: `
		select pid, venue, volume from dblp e-join G <venue, volume> as T
		where T.venue = 'VLDB'`})
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, Negation: true, SQL: `
		select pid, affiliation from dblp e-join G <affiliation> as T
		where not T.affiliation = 'NASA'`})
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, Dynamic: true, SQL: `
		select pid, venue
		from (select pid, title from dblp where title >= 'study 02') e-join G <venue> as T`})
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, MultiJoin: true, Negation: true, SQL: `
		select T1.pid, T2.pid, T1.affiliation
		from dblp e-join G <affiliation> as T1, dblp e-join G <affiliation> as T2
		where T1.affiliation = T2.affiliation and not T1.pid = T2.pid and T1.pid < T2.pid`})
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, Link: true, Negation: true, SQL: `
		select dblp.pid, dblp2.pid from dblp l-join <G> dblp as dblp2
		where dblp.pid = 'p0000' and not dblp2.pid = 'p0000'`})
	add(WorkloadQuery{Collection: "Paper", WellBehaved: true, SQL: `
		select pid, venue, volume from dblp e-join G <venue, volume> as T
		where T.volume = 'vol 5' or T.volume = 'vol 12'`})

	// ---- Celebrity (celebrity(cid, name)) ----
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: true, SQL: `
		select cid, occupation from celebrity e-join G <occupation> as T
		where T.occupation = 'Footballer'`})
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: true, Negation: true, SQL: `
		select cid, team, country from celebrity e-join G <team, country> as T
		where not T.country = 'UK'`})
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: true, Aggregation: true, SQL: `
		select occupation, count(*) as n from celebrity e-join G <occupation> as T
		group by occupation order by occupation`})
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: true, Link: true, SQL: `
		select celebrity.cid, celebrity2.cid from celebrity l-join <G> celebrity as celebrity2
		where celebrity.cid = 'c0000'`})
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: true, MultiJoin: true, Negation: true, SQL: `
		select T1.cid, T2.cid, T1.team
		from celebrity e-join G <team> as T1, celebrity e-join G <team> as T2
		where T1.team = T2.team and not T1.cid = T2.cid and T1.cid < T2.cid`})
	add(WorkloadQuery{Collection: "Celebrity", WellBehaved: false, Negation: true, SQL: `
		select cid, occupation
		from (select c1.cid as cid, c1.name as name, c2.cid as peer
		      from celebrity as c1, celebrity as c2
		      where c1.name < c2.name and not c1.cid = c2.cid) e-join G <occupation> as T`})

	return qs
}

func byColl(qs []WorkloadQuery, coll string) []WorkloadQuery {
	var out []WorkloadQuery
	for _, q := range qs {
		if q.Collection == coll {
			out = append(out, q)
		}
	}
	return out
}

// QueryEnv is a ready-to-query environment for one collection: the base
// relations with the graph-derivable columns removed (they are what
// semantic joins extract), the graph, trained models, offline
// materialisation and heuristic profiles.
type QueryEnv struct {
	Run *Run
	Cat *gsql.Catalog
}

// NewQueryEnv builds the environment, running the offline preprocessing
// of §IV-A (materialisation for static joins, graph profiling for
// heuristic joins).
func NewQueryEnv(r *Run) (*QueryEnv, error) {
	c := r.C
	models := r.Models(VRExt)
	reduced, _ := c.Drop(c.MainRel, c.Recoverable[c.MainRel])

	relations := map[string]*rel.Relation{}
	for name, rr := range c.Rels {
		if name == c.MainRel {
			relations[name] = reduced
		} else {
			relations[name] = rr
		}
	}
	matcher := c.Oracle(c.MainRel)
	mat, err := core.BuildMaterialized(c.G, models, map[string]core.BaseSpec{
		c.MainRel: {D: reduced, AR: c.Recoverable[c.MainRel], Matcher: matcher},
	}, core.Config{K: 3, H: 30, Seed: r.Seed})
	if err != nil {
		return nil, err
	}
	profiles := core.ProfileGraph(c.G, models, c.TypeKeywords, 2,
		core.Config{K: 3, H: 30, Seed: r.Seed})

	cat := &gsql.Catalog{
		Relations: relations,
		Graphs:    map[string]*graph.Graph{"G": c.G},
		Models:    models,
		Matcher:   matcher,
		Mat:       mat,
		Heur:      core.NewHeuristicJoiner(profiles),
		K:         3,
		RExt:      core.Config{H: 30, Seed: r.Seed},
	}
	return &QueryEnv{Run: r, Cat: cat}, nil
}

// Engine returns a fresh engine in the given mode.
func (e *QueryEnv) Engine(mode gsql.Mode) *gsql.Engine {
	eng := gsql.NewEngine(e.Cat)
	eng.Mode = mode
	return eng
}
