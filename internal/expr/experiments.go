package expr

import (
	"fmt"
	"strings"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/dataset"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// Options scales and scopes an experiment run.
type Options struct {
	// Entities per collection (default 60).
	Entities int
	// Seed for data generation and training (default 7).
	Seed uint64
	// Collections restricts the collections swept (default: all six).
	Collections []string
	// Variants restricts the method variants (default: all six).
	Variants []Variant
}

func (o Options) withDefaults() Options {
	if o.Entities == 0 {
		o.Entities = 60
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if len(o.Collections) == 0 {
		o.Collections = []string{"Drugs", "FakeNews", "Movie", "MovKB", "Paper", "Celebrity"}
	}
	if len(o.Variants) == 0 {
		o.Variants = Variants()
	}
	return o
}

// Point is one x/y pair of a figure series.
type Point struct{ X, Y float64 }

// Series is one labelled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is the data behind one paper figure.
type Figure struct {
	ID, Title, XLabel, YLabel string
	Series                    []Series
}

// TableII generates every collection and reports its statistics.
func TableII(o Options) []dataset.Stats {
	o = o.withDefaults()
	var out []dataset.Stats
	for _, name := range o.Collections {
		c := dataset.ByName(name)(dataset.Config{Entities: o.Entities, Seed: o.Seed})
		out = append(out, c.Stats())
	}
	return out
}

// variantSweep runs the recovery protocol over a parameter sweep for each
// variant, yielding one series per variant.
func variantSweep(o Options, coll string, xs []int, opt func(x int) RecoveryOptions, yOf func(RecoveryResult) float64) Figure {
	r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
	var series []Series
	for _, v := range o.Variants {
		s := Series{Name: string(v)}
		for _, x := range xs {
			ro := opt(x)
			ro.Variant = v
			res := Recovery(r, ro)
			s.Points = append(s.Points, Point{X: float64(x), Y: yOf(res)})
		}
		series = append(series, s)
	}
	return Figure{Series: series}
}

func f1Of(r RecoveryResult) float64   { return r.Mean.F1 }
func timeOf(r RecoveryResult) float64 { return r.Seconds }

// Fig5a: RExt quality vs the number of clusters H (Paper collection).
func Fig5a(o Options) Figure {
	o = o.withDefaults()
	f := variantSweep(o, "Paper", []int{10, 20, 30, 40, 50},
		func(h int) RecoveryOptions { return RecoveryOptions{H: h} }, f1Of)
	f.ID, f.Title = "5a", "RExt quality: vary H (Paper)"
	f.XLabel, f.YLabel = "H", "F-measure"
	return f
}

// Fig5b: quality vs the number m of extracted attributes (Movie).
func Fig5b(o Options) Figure {
	o = o.withDefaults()
	r := mustPrepare(Prepare("Movie", o.Entities, o.Seed))
	attrs := r.C.Recoverable[r.C.MainRel]
	var series []Series
	for _, v := range o.Variants {
		s := Series{Name: string(v)}
		for m := 1; m <= len(attrs); m++ {
			res := Recovery(r, RecoveryOptions{Variant: v, H: 30, DropAttrs: attrs[:m]})
			s.Points = append(s.Points, Point{X: float64(m), Y: res.Mean.F1})
		}
		series = append(series, s)
	}
	return Figure{ID: "5b", Title: "RExt quality: vary m (Movie)",
		XLabel: "m", YLabel: "F-measure", Series: series}
}

// Fig5c: quality vs the path bound k (MovKB).
func Fig5c(o Options) Figure {
	o = o.withDefaults()
	f := variantSweep(o, "MovKB", []int{1, 2, 3, 4},
		func(k int) RecoveryOptions { return RecoveryOptions{K: k, H: 30} }, f1Of)
	f.ID, f.Title = "5c", "RExt quality: vary k (MovKB)"
	f.XLabel, f.YLabel = "k", "F-measure"
	return f
}

// Fig5d: extraction time vs H (Paper).
func Fig5d(o Options) Figure {
	o = o.withDefaults()
	f := variantSweep(o, "Paper", []int{10, 20, 30, 40, 50},
		func(h int) RecoveryOptions { return RecoveryOptions{H: h} }, timeOf)
	f.ID, f.Title = "5d", "RExt efficiency: vary H (Paper)"
	f.XLabel, f.YLabel = "H", "seconds"
	return f
}

// Fig5e: extraction time vs k (MovKB).
func Fig5e(o Options) Figure {
	o = o.withDefaults()
	f := variantSweep(o, "MovKB", []int{1, 2, 3, 4},
		func(k int) RecoveryOptions { return RecoveryOptions{K: k, H: 30} }, timeOf)
	f.ID, f.Title = "5e", "RExt efficiency: vary k (MovKB)"
	f.XLabel, f.YLabel = "k", "seconds"
	return f
}

// VaryA is Exp-2(a)(4): quality while growing the keyword set A with
// value exemplars drawn from the dropped columns (as the paper expands A
// with randomly picked values like "vol. 41" or "NASA"). The paper
// reports fluctuation but robustness (F ≥ 0.89 throughout).
func VaryA(o Options) Figure {
	o = o.withDefaults()
	var series []Series
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		drop := r.C.Recoverable[r.C.MainRel]
		_, truth := r.C.Drop(r.C.MainRel, drop)
		// Exemplar pool: one value per dropped attribute, deterministic.
		var exemplars []string
		for _, attr := range drop {
			for _, v := range truth[attr] {
				exemplars = append(exemplars, v)
				break
			}
		}
		s := Series{Name: coll}
		for extra := 0; extra <= len(exemplars); extra++ {
			res := Recovery(r, RecoveryOptions{H: 30, ExtraKeywords: exemplars[:extra]})
			s.Points = append(s.Points, Point{X: float64(len(drop) + extra), Y: res.Mean.F1})
		}
		series = append(series, s)
	}
	return Figure{ID: "varyA", Title: "RExt quality: vary |A| with value exemplars",
		XLabel: "|A|", YLabel: "F-measure", Series: series}
}

// Fig5f: quality vs injected clustering noise (all collections).
func Fig5f(o Options) Figure {
	o = o.withDefaults()
	var series []Series
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		s := Series{Name: coll}
		for _, pct := range []int{0, 5, 10, 15, 20, 25, 30} {
			res := Recovery(r, RecoveryOptions{H: 30, NoiseFrac: float64(pct) / 100})
			s.Points = append(s.Points, Point{X: float64(pct), Y: res.Mean.F1})
		}
		series = append(series, s)
	}
	return Figure{ID: "5f", Title: "clustering quality (all datasets)",
		XLabel: "noisy labels %", YLabel: "F-measure", Series: series}
}

// Fig5g: quality vs HER mismatch rate η (all collections).
func Fig5g(o Options) Figure {
	o = o.withDefaults()
	var series []Series
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		s := Series{Name: coll}
		for _, pct := range []int{0, 5, 10, 15, 20, 25} {
			res := Recovery(r, RecoveryOptions{H: 30, HERNoise: float64(pct) / 100})
			s.Points = append(s.Points, Point{X: float64(pct), Y: res.Mean.F1})
		}
		series = append(series, s)
	}
	return Figure{ID: "5g", Title: "cascading HER (all datasets)",
		XLabel: "η %", YLabel: "F-measure", Series: series}
}

// IncRow is one Fig 5(h) / Exp-4 measurement.
type IncRow struct {
	Collection string
	DeltaPct   int
	IncSeconds float64
	ExtSeconds float64 // from-scratch RExt on the updated graph
	Affected   int
}

// Fig5h sweeps |ΔG| from 5% to 45% of |G| and times IncExt against a
// from-scratch RExt run on the updated graph (all collections).
func Fig5h(o Options) []IncRow {
	o = o.withDefaults()
	var rows []IncRow
	for _, coll := range o.Collections {
		// Models are trained offline once on the pristine graph — IncExt
		// never retrains them — so share one Run across the sweep and
		// regenerate the (identical) collection per ΔG point.
		trained := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		trained.Models(VRExt)
		for _, pct := range []int{5, 15, 25, 35, 45} {
			rows = append(rows, incOnce(trained, o, pct))
		}
	}
	return rows
}

func incOnce(trained *Run, o Options, pct int) IncRow {
	coll := trained.C.Name
	c := dataset.ByName(coll)(dataset.Config{Entities: o.Entities, Seed: o.Seed})
	r := trained
	drop := c.Recoverable[c.MainRel]
	reduced, _ := c.Drop(c.MainRel, drop)
	models := r.Models(VRExt)
	matcher := c.Oracle(c.MainRel)
	cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: o.Seed}

	ex := core.NewExtractor(c.G, models, cfg)
	if _, err := ex.Run(reduced, matcher.Match(reduced, c.G)); err != nil {
		return IncRow{Collection: coll, DeltaPct: pct}
	}

	n := c.G.NumEdges() * pct / 100
	if n < 2 {
		n = 2
	}
	batch := graph.RandomBatch(c.G, matRNG(o.Seed+uint64(pct)), n)
	// Apply the same ΔG to a clone for the from-scratch comparison.
	clone := c.G.Clone()
	cloneBatch := append(graph.Batch(nil), batch...)
	cloneBatch.Apply(clone)

	start := time.Now()
	stats, err := ex.ApplyGraphUpdate(batch, matcher)
	incSecs := time.Since(start).Seconds()
	if err != nil {
		return IncRow{Collection: coll, DeltaPct: pct}
	}

	start = time.Now()
	fresh := core.NewExtractor(clone, models, cfg)
	_, _ = fresh.Run(reduced, matcher.Match(reduced, clone))
	extSecs := time.Since(start).Seconds()

	return IncRow{Collection: coll, DeltaPct: pct,
		IncSeconds: incSecs, ExtSeconds: extSecs, Affected: stats.Affected}
}

// ScaleRow is one Exp-3(III) scalability measurement: extraction of the
// full relation at one data scale, with the per-stage breakdown.
type ScaleRow struct {
	Collection string
	Entities   int
	Tuples     int
	Edges      int
	Seconds    float64
	Stages     core.Timings
	F          float64
}

// ScaleSweep is Exp-3(III): RExt extracting h(S,G) for the entire input
// relation at growing data scales (the paper: "RExt scales well with
// large relations and graphs", 230.4s at 3.4M tuples / 10.2M edges).
func ScaleSweep(o Options, scales []int) []ScaleRow {
	o = o.withDefaults()
	if len(scales) == 0 {
		scales = []int{50, 100, 200, 400}
	}
	var rows []ScaleRow
	for _, coll := range o.Collections {
		for _, n := range scales {
			r := mustPrepare(Prepare(coll, n, o.Seed))
			c := r.C
			drop := c.Recoverable[c.MainRel]
			reduced, truth := c.Drop(c.MainRel, drop)
			models := r.Models(VRExt) // trained outside the timed region
			matcher := c.Oracle(c.MainRel)
			cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: o.Seed}

			start := time.Now()
			ex := core.NewExtractor(c.G, models, cfg)
			matches := matcher.Match(reduced, c.G)
			dg, err := ex.Run(reduced, matches)
			secs := time.Since(start).Seconds()
			row := ScaleRow{
				Collection: coll, Entities: n,
				Tuples: reduced.Len(), Edges: c.G.NumEdges(),
				Seconds: secs, Stages: ex.Timings(),
			}
			if err == nil && dg != nil {
				out, jerr := joinBack(reduced, matches, dg)
				if jerr == nil {
					var ps []PRF
					for _, attr := range drop {
						ps = append(ps, ValueRecovery(out, c.Main().Schema.Key, attr, truth[attr]))
					}
					row.F = Mean(ps).F1
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// joinBack reattaches an extracted relation to its source tuples for
// scoring.
func joinBack(s *rel.Relation, matches []her.Match, dg *rel.Relation) (*rel.Relation, error) {
	m := rel.NewRelation(rel.NewSchema(s.Schema.Name+"_m", s.Schema.Key,
		rel.Attribute{Name: s.Schema.Key, Type: rel.KindString},
		rel.Attribute{Name: "vid", Type: rel.KindInt}))
	for _, match := range matches {
		m.InsertVals(match.TID, rel.I(int64(match.Vertex)))
	}
	sm, err := rel.NaturalJoin(s, m)
	if err != nil {
		return nil, err
	}
	return rel.NaturalJoin(sm, dg)
}

// TableIIIRow is one relative-accuracy aggregate of Table III.
type TableIIIRow struct {
	Group string
	F     float64
	N     int
}

// TableIII enforces heuristic joins on every workload query and scores
// them against exact answers (static/dynamic for well-behaved, baseline
// for the rest), aggregated by join type and by collection.
func TableIII(o Options) []TableIIIRow {
	o = o.withDefaults()
	type agg struct {
		sum float64
		n   int
	}
	groups := map[string]*agg{}
	addTo := func(g string, f float64) {
		a := groups[g]
		if a == nil {
			a = &agg{}
			groups[g] = a
		}
		a.sum += f
		a.n++
	}
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		env, err := NewQueryEnv(r)
		if err != nil {
			continue
		}
		for _, q := range byColl(Workload(), coll) {
			exactMode := gsql.ModeAuto
			if !q.WellBehaved {
				exactMode = gsql.ModeBaseline
			}
			exact, err := env.Engine(exactMode).Query(q.SQL)
			if err != nil {
				continue
			}
			heur, err := env.Engine(gsql.ModeHeuristic).Query(q.SQL)
			if err != nil {
				continue
			}
			f := RowSetF(heur, exact).F1
			addTo("all", f)
			addTo(coll, f)
			if q.Link {
				addTo("link", f)
			} else {
				addTo("enrichment", f)
			}
			if !q.WellBehaved {
				addTo("non-well-behaved", f)
			}
		}
	}
	order := append([]string{"all", "non-well-behaved", "enrichment", "link"}, o.Collections...)
	var rows []TableIIIRow
	for _, g := range order {
		if a, ok := groups[g]; ok && a.n > 0 {
			rows = append(rows, TableIIIRow{Group: g, F: a.sum / float64(a.n), N: a.n})
		}
	}
	return rows
}

// QueryTiming is one end-to-end measurement of Exp-3(II).
type QueryTiming struct {
	ID          string
	Collection  string
	WellBehaved bool
	Link        bool
	OptimizedMS float64 // ModeAuto (static/dynamic/heuristic per planner)
	BaselineMS  float64 // ModeBaseline (HER+RExt online)
	HeuristicMS float64 // ModeHeuristic
	WarmLinkMS  float64 // second run, gL cache warm (link queries only)
	// RowsProcessed totals the rows-out of every operator in the
	// optimized run's plan (from the engine's per-operator ExecStats).
	RowsProcessed int64
}

// EndToEndResult aggregates Exp-3(II).
type EndToEndResult struct {
	PerQuery []QueryTiming
	// PrecomputeSeconds per collection (materialisation + profiling).
	PrecomputeSeconds map[string]float64
}

// EndToEnd times every workload query under the optimized, baseline and
// heuristic implementations.
func EndToEnd(o Options) EndToEndResult {
	o = o.withDefaults()
	res := EndToEndResult{PrecomputeSeconds: map[string]float64{}}
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		start := time.Now()
		env, err := NewQueryEnv(r)
		if err != nil {
			continue
		}
		res.PrecomputeSeconds[coll] = time.Since(start).Seconds()
		for _, q := range byColl(Workload(), coll) {
			qt := QueryTiming{ID: q.ID, Collection: coll, WellBehaved: q.WellBehaved, Link: q.Link}
			qt.OptimizedMS, qt.RowsProcessed = timeQuery(env, gsql.ModeAuto, q.SQL)
			qt.BaselineMS, _ = timeQuery(env, gsql.ModeBaseline, q.SQL)
			qt.HeuristicMS, _ = timeQuery(env, gsql.ModeHeuristic, q.SQL)
			if q.Link {
				qt.WarmLinkMS, _ = timeQuery(env, gsql.ModeAuto, q.SQL) // gL now cached
			}
			res.PerQuery = append(res.PerQuery, qt)
		}
	}
	return res
}

func timeQuery(env *QueryEnv, mode gsql.Mode, sql string) (ms float64, rows int64) {
	eng := env.Engine(mode)
	start := time.Now()
	if _, err := eng.Query(sql); err != nil {
		return -1, 0
	}
	ms = float64(time.Since(start).Microseconds()) / 1000
	if eng.LastStats != nil {
		rows = eng.LastStats.TotalRows()
	}
	return ms, rows
}

// ExplainSamples renders the annotated EXPLAIN plan (per-operator rows
// out and wall time) for one enrichment-join and one link-join query of
// the workload's first collection.
func ExplainSamples(o Options) (string, error) {
	o = o.withDefaults()
	coll := o.Collections[0]
	env, err := NewQueryEnv(mustPrepare(Prepare(coll, o.Entities, o.Seed)))
	if err != nil {
		return "", err
	}
	eng := env.Engine(gsql.ModeAuto)
	var b strings.Builder
	var gotEnrich, gotLink bool
	for _, q := range byColl(Workload(), coll) {
		if q.Link && gotLink || !q.Link && gotEnrich {
			continue
		}
		text, err := eng.Explain(q.SQL)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "EXPLAIN %s\n%s\n", q.ID, text)
		if q.Link {
			gotLink = true
		} else {
			gotEnrich = true
		}
		if gotEnrich && gotLink {
			break
		}
	}
	return b.String(), nil
}

// TrainingRow reports model-training cost per collection (Exp-3(I)(a)).
type TrainingRow struct {
	Collection  string
	LSTMSeconds float64
	BertSeconds float64
}

// Training times sequence-model training per collection.
func Training(o Options) []TrainingRow {
	o = o.withDefaults()
	var rows []TrainingRow
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		start := time.Now()
		r.Models(VRExt)
		lstm := time.Since(start).Seconds()
		start = time.Now()
		r.Models(VBertSeq)
		bert := time.Since(start).Seconds()
		rows = append(rows, TrainingRow{Collection: coll, LSTMSeconds: lstm, BertSeconds: bert})
	}
	return rows
}

// PrecomputeRow reports offline pre-extraction cost and size (Exp-3(I)(b)).
type PrecomputeRow struct {
	Collection     string
	Seconds        float64
	ExtractedCells int     // tuples × attributes materialised
	GraphEdges     int     //
	SizeRatio      float64 // cells / edges, the paper's %-of-raw proxy
}

// Precompute times BuildMaterialized per collection and reports the
// materialised size relative to the graph.
func Precompute(o Options) []PrecomputeRow {
	o = o.withDefaults()
	var rows []PrecomputeRow
	for _, coll := range o.Collections {
		r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
		c := r.C
		reduced, _ := c.Drop(c.MainRel, c.Recoverable[c.MainRel])
		start := time.Now()
		mat, err := core.BuildMaterialized(c.G, r.Models(VRExt), map[string]core.BaseSpec{
			c.MainRel: {D: reduced, AR: c.Recoverable[c.MainRel], Matcher: c.Oracle(c.MainRel)},
		}, core.Config{H: 30, Seed: o.Seed})
		secs := time.Since(start).Seconds()
		if err != nil {
			continue
		}
		b := mat.Base(c.MainRel)
		cells := b.Extracted.Len()*len(b.Extracted.Schema.Attrs) +
			b.MatchRel.Len()*len(b.MatchRel.Schema.Attrs)
		rows = append(rows, PrecomputeRow{
			Collection: coll, Seconds: secs, ExtractedCells: cells,
			GraphEdges: c.G.NumEdges(),
			SizeRatio:  float64(cells) / float64(c.G.NumEdges()),
		})
	}
	return rows
}

// CaseStudyResult verifies the Exp-1 narratives.
type CaseStudyResult struct {
	// Q1Pairs is the number of conflicting same-disease drug pairs found.
	Q1Pairs int
	// Q1Accuracy is the fraction of returned pairs that truly share a
	// treated disease per ground truth.
	Q1Accuracy float64
	// SpinosadDisease is the disease extracted for Spinosad (the paper's
	// positive example; must be its treats-target, not a symptom-linked
	// disease).
	SpinosadDisease string
	// SpinosadCorrect reports whether it matches ground truth.
	SpinosadCorrect bool
	// Q2Topics is the number of (author, topic) rows of the FakeNews q2.
	Q2Topics int
	// Q2Accuracy is the fraction matching ground truth.
	Q2Accuracy float64
}

// CaseStudy runs the two Exp-1 tasks: q1 (conflicting drugs for the same
// disease, over Drugs) and q2 (fake-news author topics, over FakeNews).
func CaseStudy(o Options) (CaseStudyResult, error) {
	o = o.withDefaults()
	var out CaseStudyResult

	// q1 over Drugs.
	r := mustPrepare(Prepare("Drugs", o.Entities, o.Seed))
	env, err := NewQueryEnv(r)
	if err != nil {
		return out, err
	}
	q1 := `
		select T1.cas, T2.cas, T1.disease
		from drug e-join G <disease> as T1,
		     drug e-join G <disease> as T2,
		     interact
		where interact.cas1 = T1.cas and interact.cas2 = T2.cas
		  and interact.type = -1 and T1.disease = T2.disease
		  and not T1.cas = T2.cas`
	res, err := env.Engine(gsql.ModeAuto).Query(q1)
	if err != nil {
		return out, err
	}
	out.Q1Pairs = res.Len()
	truthDisease := map[string]string{}
	main := r.C.Main()
	keyCol := main.Schema.KeyCol()
	disCol := main.Schema.Col("disease")
	for _, t := range main.Tuples {
		truthDisease[t[keyCol].String()] = t[disCol].String()
	}
	hits := 0
	for _, t := range res.Tuples {
		a := res.Get(t, "T1.cas").Str()
		b := res.Get(t, "T2.cas").Str()
		if truthDisease[a] != "" && truthDisease[a] == truthDisease[b] {
			hits++
		}
	}
	if res.Len() > 0 {
		out.Q1Accuracy = float64(hits) / float64(res.Len())
	}

	// Spinosad discrimination.
	sp, err := env.Engine(gsql.ModeAuto).Query(`
		select cas, disease from drug e-join G <disease> as T where T.name = 'Spinosad'`)
	if err == nil && sp.Len() > 0 {
		out.SpinosadDisease = sp.Get(sp.Tuples[0], "disease").Str()
		out.SpinosadCorrect = out.SpinosadDisease == truthDisease[sp.Get(sp.Tuples[0], "cas").Str()]
	}

	// q2 over FakeNews.
	r2 := mustPrepare(Prepare("FakeNews", o.Entities, o.Seed))
	env2, err := NewQueryEnv(r2)
	if err != nil {
		return out, err
	}
	res2, err := env2.Engine(gsql.ModeAuto).Query(`
		select author, topic from fakenews e-join G <topic> as T`)
	if err != nil {
		return out, err
	}
	out.Q2Topics = res2.Len()
	main2 := r2.C.Main()
	topicTruth := map[string]string{}
	kc := main2.Schema.KeyCol()
	tc := main2.Schema.Col("topic")
	for _, t := range main2.Tuples {
		topicTruth[t[kc].String()] = t[tc].String()
	}
	hits2 := 0
	for _, t := range res2.Tuples {
		if res2.Get(t, "topic").Str() == topicTruth[res2.Get(t, "author").Str()] {
			hits2++
		}
	}
	if res2.Len() > 0 {
		out.Q2Accuracy = float64(hits2) / float64(res2.Len())
	}
	return out, nil
}

// matRNG builds a deterministic RNG for update batches.
func matRNG(seed uint64) *mat.RNG { return mat.NewRNG(seed) }
