// Package expr implements the experimental harness of §V: the column-drop
// recovery protocol with F-measure scoring (Exp-2), the 36-query workload
// and heuristic-join relative accuracy (Table III), the end-to-end timing
// comparisons (Exp-3), and incremental-maintenance sweeps (Exp-4, Fig
// 5(h)). Each experiment runner returns typed rows that cmd/experiments
// renders in the paper's table/figure layout.
package expr

import (
	"fmt"
	"sort"

	"semjoin/internal/rel"
)

// PRF is a precision/recall/F-measure triple.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// String renders the triple compactly.
func (p PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f", p.Precision, p.Recall, p.F1)
}

func prf(correct, extracted, truth int) PRF {
	var p PRF
	if extracted > 0 {
		p.Precision = float64(correct) / float64(extracted)
	}
	if truth > 0 {
		p.Recall = float64(correct) / float64(truth)
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// ValueRecovery scores recovered attribute values against ground truth:
// enriched must carry the key attribute keyAttr and the recovered attr;
// truth maps key -> expected value. Nulls count as not-extracted.
func ValueRecovery(enriched *rel.Relation, keyAttr, attr string, truth map[string]string) PRF {
	keyCol := enriched.Schema.Col(keyAttr)
	col := enriched.Schema.Col(attr)
	if keyCol < 0 || col < 0 {
		return PRF{}
	}
	got := map[string]rel.Value{}
	for _, t := range enriched.Tuples {
		got[t[keyCol].String()] = t[col]
	}
	correct, extracted := 0, 0
	for key, want := range truth {
		v, ok := got[key]
		if !ok || v.IsNull() {
			continue
		}
		extracted++
		if v.String() == want {
			correct++
		}
	}
	return prf(correct, extracted, len(truth))
}

// RowSetF computes the F-measure of a result relation against a reference
// relation, comparing canonicalised rows over the columns the two schemas
// share (multiset semantics). Table III uses it with the exact join
// result as ground truth.
func RowSetF(got, want *rel.Relation) PRF {
	if got.Len() == 0 && want.Len() == 0 {
		return PRF{Precision: 1, Recall: 1, F1: 1} // vacuous agreement
	}
	shared := sharedColumns(got.Schema, want.Schema)
	if len(shared) == 0 {
		return PRF{}
	}
	wantRows := map[string]int{}
	for _, t := range want.Tuples {
		wantRows[rowKey(want, t, shared)]++
	}
	correct := 0
	for _, t := range got.Tuples {
		k := rowKey(got, t, shared)
		if wantRows[k] > 0 {
			wantRows[k]--
			correct++
		}
	}
	return prf(correct, got.Len(), want.Len())
}

func sharedColumns(a, b *rel.Schema) []string {
	var out []string
	for _, attr := range a.Attrs {
		if b.Has(attr.Name) {
			out = append(out, attr.Name)
		}
	}
	sort.Strings(out)
	return out
}

func rowKey(r *rel.Relation, t rel.Tuple, cols []string) string {
	k := ""
	for _, c := range cols {
		k += r.Get(t, c).Key() + "\x1f"
	}
	return k
}

// Mean averages a slice of PRFs component-wise.
func Mean(ps []PRF) PRF {
	if len(ps) == 0 {
		return PRF{}
	}
	var out PRF
	for _, p := range ps {
		out.Precision += p.Precision
		out.Recall += p.Recall
		out.F1 += p.F1
	}
	n := float64(len(ps))
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}
