package expr

import "testing"

func TestRecoveryAllCollections(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	for _, name := range []string{"Drugs", "FakeNews", "Movie", "MovKB", "Paper", "Celebrity"} {
		name := name
		t.Run(name, func(t *testing.T) {
			r := mustPrepare(Prepare(name, 40, 7))
			res := Recovery(r, RecoveryOptions{H: 30})
			t.Logf("%s: mean %v (%.2fs)", name, res.Mean, res.Seconds)
			for attr, p := range res.PerAttr {
				t.Logf("  %s: %v", attr, p)
			}
			if res.Mean.F1 < 0.8 {
				t.Errorf("%s mean F1 = %.3f, want >= 0.8", name, res.Mean.F1)
			}
		})
	}
}

func TestRecoveryRndPathWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	r := mustPrepare(Prepare("Paper", 40, 7))
	guided := Recovery(r, RecoveryOptions{H: 30})
	random := Recovery(r, RecoveryOptions{H: 30, Variant: VRndPath})
	t.Logf("guided %v vs random %v", guided.Mean, random.Mean)
	if random.Mean.F1 > guided.Mean.F1+0.05 {
		t.Errorf("random paths should not beat guided: %.3f vs %.3f",
			random.Mean.F1, guided.Mean.F1)
	}
}
