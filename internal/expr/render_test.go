package expr

import (
	"strings"
	"testing"
)

func TestRenderFigure(t *testing.T) {
	var b strings.Builder
	RenderFigure(&b, Figure{
		ID: "5x", Title: "demo", XLabel: "k", YLabel: "F",
		Series: []Series{
			{Name: "A", Points: []Point{{1, 0.5}, {2, 0.75}}},
			{Name: "B", Points: []Point{{2, 0.9}}},
		},
	})
	out := b.String()
	for _, want := range []string{"Figure 5x", "demo", "k", "A", "B", "0.500", "0.900", "(y: F)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Series B has no point at x=1 → dash.
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for absent point")
	}
}

func TestRenderIncRows(t *testing.T) {
	var b strings.Builder
	RenderIncRows(&b, []IncRow{
		{Collection: "Drugs", DeltaPct: 5, IncSeconds: 0.1, ExtSeconds: 1.0, Affected: 7},
		{Collection: "Drugs", DeltaPct: 45, IncSeconds: 0, ExtSeconds: 0, Affected: 0},
	})
	out := b.String()
	if !strings.Contains(out, "10.0x") {
		t.Errorf("missing speedup in:\n%s", out)
	}
	if !strings.Contains(out, "Drugs") || !strings.Contains(out, "45") {
		t.Errorf("missing rows in:\n%s", out)
	}
}

func TestRenderTableIII(t *testing.T) {
	var b strings.Builder
	RenderTableIII(&b, []TableIIIRow{{Group: "all", F: 0.881, N: 36}})
	if !strings.Contains(b.String(), "0.88") || !strings.Contains(b.String(), "36") {
		t.Errorf("table:\n%s", b.String())
	}
}

func TestRenderEndToEnd(t *testing.T) {
	var b strings.Builder
	RenderEndToEnd(&b, EndToEndResult{
		PerQuery: []QueryTiming{
			{ID: "q1", Collection: "Drugs", OptimizedMS: 1, BaselineMS: 100, HeuristicMS: 10},
			{ID: "q5", Collection: "Drugs", Link: true, OptimizedMS: 2, BaselineMS: 40, HeuristicMS: 8, WarmLinkMS: 1},
		},
		PrecomputeSeconds: map[string]float64{"Drugs": 3.5},
	})
	out := b.String()
	for _, want := range []string{"Drugs", "base/opt", "overall:", "link joins: warm gL"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	if p := prf(0, 0, 0); p.F1 != 0 || p.Precision != 0 {
		t.Fatalf("empty prf = %+v", p)
	}
	if m := Mean(nil); m.F1 != 0 {
		t.Fatal("Mean(nil) should be zero")
	}
	m := Mean([]PRF{{1, 1, 1}, {0, 0, 0}})
	if m.F1 != 0.5 {
		t.Fatalf("Mean = %+v", m)
	}
}
