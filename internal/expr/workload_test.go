package expr

import (
	"testing"

	"semjoin/internal/gsql"
)

func TestWorkloadComposition(t *testing.T) {
	qs := Workload()
	if len(qs) != 36 {
		t.Fatalf("workload size = %d, want 36", len(qs))
	}
	counts := map[string]int{}
	perColl := map[string]int{}
	for _, q := range qs {
		perColl[q.Collection]++
		if q.Link {
			counts["link"]++
		} else {
			counts["enrichment"]++
		}
		if q.Dynamic {
			counts["dynamic"]++
		}
		if q.MultiJoin {
			counts["multi"]++
		}
		if q.Negation {
			counts["negation"]++
		}
		if q.Aggregation {
			counts["aggregation"]++
		}
		if !q.WellBehaved {
			counts["nonwb"]++
		}
	}
	for coll, n := range perColl {
		if n != 6 {
			t.Errorf("%s has %d queries, want 6", coll, n)
		}
	}
	// §V: 32 enrichment, 4 link, 4 dynamic, 10 multi-join, 17 negation,
	// 4 aggregation; 32 of 36 well-behaved.
	want := map[string]int{
		"enrichment": 32, "link": 4, "dynamic": 4, "multi": 10,
		"negation": 17, "aggregation": 4, "nonwb": 4,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s = %d, want %d", k, counts[k], n)
		}
	}
}

func TestWorkloadParsesAndAnalyzes(t *testing.T) {
	// Parse every query; the planner's well-behaved verdict must match
	// the tag (verdicts need a catalog, so use a minimal env per
	// collection at tiny scale without model training: WellBehaved only
	// inspects the catalog shape, not data).
	if testing.Short() {
		t.Skip("builds envs")
	}
	envs := map[string]*QueryEnv{}
	for _, q := range Workload() {
		if _, err := gsql.Parse(q.SQL); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
			continue
		}
		env, ok := envs[q.Collection]
		if !ok {
			r := mustPrepare(Prepare(q.Collection, 24, 7))
			var err error
			env, err = NewQueryEnv(r)
			if err != nil {
				t.Fatalf("%s env: %v", q.Collection, err)
			}
			envs[q.Collection] = env
		}
		parsed, _ := gsql.Parse(q.SQL)
		got := env.Engine(gsql.ModeAuto).WellBehaved(parsed)
		if got != q.WellBehaved {
			t.Errorf("%s: WellBehaved = %v, tagged %v", q.ID, got, q.WellBehaved)
		}
	}
}

func TestWorkloadExecutesInAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, coll := range []string{"Drugs", "Paper"} {
		r := mustPrepare(Prepare(coll, 24, 7))
		env, err := NewQueryEnv(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range byColl(Workload(), coll) {
			for _, mode := range []gsql.Mode{gsql.ModeAuto, gsql.ModeBaseline} {
				out, err := env.Engine(mode).Query(q.SQL)
				if err != nil {
					t.Errorf("%s mode %d: %v", q.ID, mode, err)
					continue
				}
				_ = out
			}
		}
	}
}

func TestWorkloadExactVsHeuristicAgreeSomewhat(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := mustPrepare(Prepare("Movie", 24, 7))
	env, err := NewQueryEnv(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range byColl(Workload(), "Movie") {
		if q.Link {
			continue // heuristic mode applies to enrichment joins
		}
		exact, err := env.Engine(gsql.ModeAuto).Query(q.SQL)
		if err != nil {
			t.Fatalf("%s exact: %v", q.ID, err)
		}
		heur, err := env.Engine(gsql.ModeHeuristic).Query(q.SQL)
		if err != nil {
			t.Fatalf("%s heuristic: %v", q.ID, err)
		}
		f := RowSetF(heur, exact)
		t.Logf("%s: heuristic F=%.2f (%d vs %d rows)", q.ID, f.F1, heur.Len(), exact.Len())
	}
}
