package expr

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderFigure writes a figure as a plain-text table: one row per x, one
// column per series.
func RenderFigure(w io.Writer, f Figure) {
	fmt.Fprintf(w, "Figure %s — %s\n", f.ID, f.Title)
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	var xvals []float64
	for x := range xs {
		xvals = append(xvals, x)
	}
	sort.Float64s(xvals)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xvals {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.3f", p.Y)
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "(y: %s)\n\n", f.YLabel)
}

// RenderIncRows writes the Fig 5(h) / Exp-4 table.
func RenderIncRows(w io.Writer, rows []IncRow) {
	out := [][]string{{"collection", "|ΔG|%", "IncExt(s)", "RExt(s)", "speedup", "affected"}}
	for _, r := range rows {
		speed := "-"
		if r.IncSeconds > 0 {
			speed = fmt.Sprintf("%.1fx", r.ExtSeconds/r.IncSeconds)
		}
		out = append(out, []string{
			r.Collection, fmt.Sprintf("%d", r.DeltaPct),
			fmt.Sprintf("%.4f", r.IncSeconds), fmt.Sprintf("%.4f", r.ExtSeconds),
			speed, fmt.Sprintf("%d", r.Affected),
		})
	}
	writeAligned(w, out)
}

// RenderTableIII writes the heuristic-accuracy table.
func RenderTableIII(w io.Writer, rows []TableIIIRow) {
	out := [][]string{{"group", "F-measure", "queries"}}
	for _, r := range rows {
		out = append(out, []string{r.Group, fmt.Sprintf("%.2f", r.F), fmt.Sprintf("%d", r.N)})
	}
	writeAligned(w, out)
}

// RenderEndToEnd writes the Exp-3(II) summary: per-collection averages
// and the headline speedup factors.
func RenderEndToEnd(w io.Writer, res EndToEndResult) {
	type agg struct {
		opt, base, heur float64
		rows            int64
		n               int
	}
	per := map[string]*agg{}
	var linkCold, linkWarm float64
	var linkN int
	for _, q := range res.PerQuery {
		a := per[q.Collection]
		if a == nil {
			a = &agg{}
			per[q.Collection] = a
		}
		if q.OptimizedMS >= 0 && q.BaselineMS >= 0 {
			a.opt += q.OptimizedMS
			a.base += q.BaselineMS
			a.heur += q.HeuristicMS
			a.rows += q.RowsProcessed
			a.n++
		}
		if q.Link && q.WarmLinkMS >= 0 {
			linkCold += q.OptimizedMS
			linkWarm += q.WarmLinkMS
			linkN++
		}
	}
	out := [][]string{{"collection", "optimized(ms)", "baseline(ms)", "heuristic(ms)", "base/opt", "base/heur", "rows/query", "precompute(s)"}}
	var colls []string
	for c := range per {
		colls = append(colls, c)
	}
	sort.Strings(colls)
	var totOpt, totBase, totHeur float64
	var totN int
	for _, c := range colls {
		a := per[c]
		if a.n == 0 {
			continue
		}
		out = append(out, []string{
			c,
			fmt.Sprintf("%.2f", a.opt/float64(a.n)),
			fmt.Sprintf("%.2f", a.base/float64(a.n)),
			fmt.Sprintf("%.2f", a.heur/float64(a.n)),
			fmt.Sprintf("%.1fx", a.base/a.opt),
			fmt.Sprintf("%.1fx", a.base/a.heur),
			fmt.Sprintf("%d", a.rows/int64(a.n)),
			fmt.Sprintf("%.1f", res.PrecomputeSeconds[c]),
		})
		totOpt += a.opt
		totBase += a.base
		totHeur += a.heur
		totN += a.n
	}
	writeAligned(w, out)
	if totOpt > 0 && totHeur > 0 {
		fmt.Fprintf(w, "overall: optimized %.1fx, heuristic %.1fx faster than baseline over %d queries\n",
			totBase/totOpt, totBase/totHeur, totN)
	}
	if linkN > 0 && linkWarm > 0 {
		fmt.Fprintf(w, "link joins: warm gL cache %.1fx faster than cold\n", linkCold/linkWarm)
	}
	fmt.Fprintln(w)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%g", x)
	return s
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		if ri == 0 {
			total := 0
			for _, ww := range widths {
				total += ww + 2
			}
			fmt.Fprintln(w, strings.Repeat("-", total-2))
		}
	}
}
