package expr

import (
	"testing"

	"semjoin/internal/core"
	"semjoin/internal/embed"
	"semjoin/internal/mat"
)

// TestDebugCelebrityGeometry probes value↔keyword cosines under varying
// GloVe configurations; enable with -v.
func TestDebugCelebrityGeometry(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	r := mustPrepare(Prepare("Celebrity", 40, 7))
	corpus := core.BuildCorpus(r.C.G, 3, 8, r.Seed)
	types := core.TypeSentences(r.C.G)
	for _, cfg := range []struct {
		name  string
		reps  int
		ep    int
		walks int
	}{
		{"reps20/ep15", 20, 15, 3},
		{"reps60/ep15", 60, 15, 3},
		{"reps20/ep50", 20, 50, 3},
		{"reps60/ep50", 60, 50, 3},
	} {
		gcorp := append([][]string(nil), corpus...)
		for i := 0; i < cfg.reps; i++ {
			gcorp = append(gcorp, types...)
		}
		g := embed.TrainGloVe(gcorp, embed.GloVeConfig{Dim: 64, Epochs: cfg.ep, Seed: 7})
		cos := func(a, b string) float64 {
			return mat.Cosine(mat.Normalize(g.Embed(a)), mat.Normalize(g.Embed(b)))
		}
		t.Logf("%s: cos(Brazil,country)=%.2f cos(London,country)=%.2f cos(London,city)=%.2f cos(Brazil,city)=%.2f cos(UnitedFC,team)=%.2f",
			cfg.name, cos("Brazil", "country"), cos("London", "country"),
			cos("London", "city"), cos("Brazil", "city"), cos("United FC", "team"))
	}
}
