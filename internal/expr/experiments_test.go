package expr

import (
	"testing"
)

// Tiny-scale smoke tests for every experiment runner: the real outputs
// come from cmd/experiments; these guard the runners against bitrot.

func smokeOptions() Options {
	return Options{
		Entities:    16,
		Seed:        7,
		Collections: []string{"Drugs"},
		Variants:    []Variant{VRExt},
	}
}

func TestTableIISmoke(t *testing.T) {
	rows := TableII(smokeOptions())
	if len(rows) != 1 || rows[0].Tuples == 0 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	o := smokeOptions()
	for _, fig := range []struct {
		name string
		run  func(Options) Figure
	}{
		{"fig5b", Fig5b}, // trains Movie internally
		{"fig5f", Fig5f},
		{"fig5g", Fig5g},
		{"varyA", VaryA},
	} {
		f := fig.run(o)
		if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
			t.Errorf("%s produced no data", fig.name)
		}
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Y < 0 || p.Y > 1.000001 {
					t.Errorf("%s: F out of range: %v", fig.name, p)
				}
			}
		}
	}
}

func TestFig5hSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	rows := Fig5h(smokeOptions())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ExtSeconds <= 0 || r.IncSeconds <= 0 {
			t.Errorf("degenerate timing: %+v", r)
		}
	}
}

func TestScaleSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	rows := ScaleSweep(smokeOptions(), []int{16, 32})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Tuples <= rows[0].Tuples {
		t.Fatal("scale did not grow")
	}
	for _, r := range rows {
		total := r.Stages.Selection + r.Stages.Embedding + r.Stages.Clustering +
			r.Stages.Ranking + r.Stages.Extraction
		if total <= 0 || total > r.Seconds*1.5 {
			t.Errorf("stage breakdown inconsistent: %+v vs %.3f", r.Stages, r.Seconds)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	rows := Ablations(Options{Entities: 16, Seed: 7, Collections: []string{"Movie"}})
	if len(rows) < 8 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	var full float64
	for _, r := range rows {
		if r.Name == "full (defaults)" {
			full = r.F
		}
	}
	if full == 0 {
		t.Fatal("full configuration scored 0")
	}
}

func TestTrainingAndPrecomputeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	tr := Training(smokeOptions())
	if len(tr) != 1 || tr[0].LSTMSeconds <= 0 || tr[0].BertSeconds <= 0 {
		t.Fatalf("training rows = %+v", tr)
	}
	pc := Precompute(smokeOptions())
	if len(pc) != 1 || pc[0].ExtractedCells == 0 {
		t.Fatalf("precompute rows = %+v", pc)
	}
}
