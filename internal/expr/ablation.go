package expr

import (
	"time"

	"semjoin/internal/core"
)

// AblationRow is one ablation measurement: the configuration name, the
// mean recovery F-measure and the extraction wall time.
type AblationRow struct {
	Name    string
	F       float64
	Seconds float64
}

// Ablations runs the DESIGN.md ablation suite on one collection (default
// Movie): each documented extension toggled to its paper-exact setting,
// each ranking term disabled in turn, refinement off, and the RndPath
// selection baseline.
func Ablations(o Options) []AblationRow {
	o = o.withDefaults()
	coll := "Movie"
	if len(o.Collections) == 1 {
		coll = o.Collections[0]
	}
	r := mustPrepare(Prepare(coll, o.Entities, o.Seed))
	c := r.C
	drop := c.Recoverable[c.MainRel]
	reduced, truth := c.Drop(c.MainRel, drop)
	matcher := c.Oracle(c.MainRel)

	cases := []struct {
		name   string
		mutate func(*core.Config)
		models core.Models
	}{
		{"full (defaults)", func(*core.Config) {}, r.Models(VRExt)},
		{"beam=1 (paper greedy, E1)", func(cc *core.Config) { cc.Beam = 1 }, r.Models(VRExt)},
		{"beam=2", func(cc *core.Config) { cc.Beam = 2 }, r.Models(VRExt)},
		{"bounce allowed (E2 off)", func(cc *core.Config) { cc.AllowBounce = true }, r.Models(VRExt)},
		{"no length penalty (E3 off)", func(cc *core.Config) { cc.LengthPenalty = -1 }, r.Models(VRExt)},
		{"no refinement", func(cc *core.Config) { cc.NoRefinement = true }, r.Models(VRExt)},
		{"no term1 (coverage)", func(cc *core.Config) { cc.DisableTerm1 = true }, r.Models(VRExt)},
		{"no term2 (redundancy)", func(cc *core.Config) { cc.DisableTerm2 = true }, r.Models(VRExt)},
		{"no term3 (interest)", func(cc *core.Config) { cc.DisableTerm3 = true }, r.Models(VRExt)},
		{"random paths (RndPath)", func(*core.Config) {}, r.Models(VRndPath)},
	}
	var rows []AblationRow
	for _, tc := range cases {
		cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: o.Seed}
		tc.mutate(&cfg)
		start := time.Now()
		out, err := core.EnrichmentJoin(reduced, c.G, tc.models, matcher, drop, cfg)
		secs := time.Since(start).Seconds()
		row := AblationRow{Name: tc.name, Seconds: secs}
		if err == nil {
			var ps []PRF
			for _, attr := range drop {
				ps = append(ps, ValueRecovery(out, c.Main().Schema.Key, attr, truth[attr]))
			}
			row.F = Mean(ps).F1
		}
		rows = append(rows, row)
	}
	return rows
}
