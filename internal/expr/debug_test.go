package expr

import (
	"testing"

	"semjoin/internal/core"
)

// TestDebugRecoveryClusters dumps cluster diagnostics for one collection;
// enable with -v -run TestDebugRecoveryClusters.
func TestDebugRecoveryClusters(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	for _, name := range []string{"Movie"} {
		r := mustPrepare(Prepare(name, 40, 7))
		c := r.C
		drop := c.Recoverable[c.MainRel]
		reduced, _ := c.Drop(c.MainRel, drop)
		cfg := core.Config{H: 14, Keywords: drop, MaxAttrs: len(drop), Seed: r.Seed}
		ex := core.NewExtractor(c.G, r.Models(VRExt), cfg)
		if err := ex.Discover(reduced, c.Oracle(c.MainRel).Match(reduced, c.G)); err != nil {
			t.Fatal(err)
		}
		t.Logf("=== %s (drop %v) selected=%v", name, drop, ex.Scheme().Attrs())
		for _, ci := range ex.ClusterDiagnostics() {
			ends := ci.EndLabelCounts
			if len(ends) > 6 {
				short := map[string]int{}
				n := 0
				for k, v := range ends {
					short[k] = v
					if n++; n == 6 {
						break
					}
				}
				ends = short
			}
			t.Logf("score=%.3f t=(%.2f,%.2f,%.2f) kw=%q size=%d pats=%v ends=%v",
				ci.Score, ci.Term1, ci.Term2, ci.Term3, ci.Keyword, ci.Size, ci.Patterns, ends)
		}
	}
}
