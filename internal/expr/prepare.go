package expr

import (
	"fmt"
	"strings"
	"sync"

	"semjoin/internal/core"
	"semjoin/internal/dataset"
	"semjoin/internal/embed"
	"semjoin/internal/nn"
)

// Variant names one extraction method of Exp-2's ablation study.
type Variant string

// The method variants compared throughout §V.
const (
	// VRExt is the paper's method: LSTM Mρ + GloVe-style Me.
	VRExt Variant = "RExt"
	// VBertEmb swaps Me for a Transformer encoder (RExtBertEmb).
	VBertEmb Variant = "RExtBertEmb"
	// VShortEmb halves the word-embedding width (RExtShortEmb).
	VShortEmb Variant = "RExtShortEmb"
	// VBertSeq swaps Mρ for a Transformer (RExtBertSeq).
	VBertSeq Variant = "RExtBertSeq"
	// VShortSeq narrows the LSTM hidden layer (RExtShortSeq).
	VShortSeq Variant = "RExtShortSeq"
	// VRndPath replaces Mρ-guided selection with random walks (RndPath).
	VRndPath Variant = "RndPath"
)

// Variants lists all method variants in the paper's legend order.
func Variants() []Variant {
	return []Variant{VRExt, VBertEmb, VShortEmb, VBertSeq, VShortSeq, VRndPath}
}

// Run bundles one generated collection with its (lazily) trained models.
type Run struct {
	C    *dataset.Collection
	Seed uint64
	// Epochs for sequence-model training.
	Epochs int

	mu        sync.Mutex
	corpus    [][]string
	glove     [][]string // corpus + replicated type sentences
	vocab     *nn.Vocab
	models    map[Variant]core.Models
	seqCache  map[Variant]nn.SequenceModel
	wordCache map[Variant]embed.Embedder
}

// Prepare generates a collection at the given scale and returns a
// Run. The name reaches this function from user input (the
// -collection flag of cmd/gsql and cmd/rextprofile), so an unknown
// collection is an error, not a panic.
func Prepare(name string, entities int, seed uint64) (*Run, error) {
	gen := dataset.ByName(name)
	if gen == nil {
		return nil, fmt.Errorf("expr: unknown collection %q (known: %s)", name, strings.Join(dataset.Names(), ", "))
	}
	c := gen(dataset.Config{Entities: entities, Seed: seed})
	return &Run{C: c, Seed: seed, Epochs: 6, models: map[Variant]core.Models{}}, nil
}

// mustPrepare unwraps Prepare for the experiment harness, whose
// figure-producing entry points have no error channel and only ever
// pass the compiled-in collection names.
func mustPrepare(r *Run, err error) *Run {
	if err != nil {
		panic(err) //lint:allow nopanic experiment harness with hard-coded collection names; no error channel in the Figure API
	}
	return r
}

// ensureCorpus builds the shared random-walk corpus once.
func (r *Run) ensureCorpus() {
	if r.corpus != nil {
		return
	}
	r.corpus = core.BuildCorpus(r.C.G, 3, 8, r.Seed)
	minCount := 1
	if len(r.corpus) > 1000 {
		minCount = 2
	}
	r.vocab = nn.BuildVocab(r.corpus, minCount)
	types := core.TypeSentences(r.C.G)
	reps := 20
	if len(types) > 0 && len(r.corpus)/len(types) > reps {
		reps = len(r.corpus) / len(types)
	}
	r.glove = append([][]string(nil), r.corpus...)
	for i := 0; i < reps; i++ {
		r.glove = append(r.glove, types...)
	}
}

// Models returns the trained model pair for a variant, training on first
// use. Sub-models are shared across variants where the paper shares them
// (e.g. every variant except the *Emb ones uses the same GloVe).
func (r *Run) Models(v Variant) core.Models {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.models[v]; ok {
		return m
	}
	r.ensureCorpus()

	lstm := func(hidden int) *nn.LSTM {
		m := nn.NewLSTM(r.vocab, nn.LSTMConfig{HiddenDim: hidden, Seed: r.Seed})
		m.Train(r.corpus, r.Epochs)
		return m
	}
	// Every variant's word embedder gets the type channel (the paper uses
	// the same pretrained-GloVe family everywhere; the channel is part of
	// our Me substitution, see DESIGN.md).
	glove := func(dim int) embed.Embedder {
		g := embed.TrainGloVe(r.glove, embed.GloVeConfig{Dim: dim, Seed: r.Seed})
		return core.NewTypeAwareEmbedder(r.C.G, g, 2, r.Seed)
	}

	var m core.Models
	switch v {
	case VRExt:
		m = core.Models{Seq: r.seqOf(VRExt, func() nn.SequenceModel { return lstm(64) }),
			Word: r.wordOf(VRExt, func() embed.Embedder { return glove(64) })}
	case VBertEmb:
		m = core.Models{Seq: r.seqOf(VRExt, func() nn.SequenceModel { return lstm(64) }),
			Word: r.wordOf(VBertEmb, func() embed.Embedder {
				tf := nn.NewTransformer(r.vocab, nn.TransformerConfig{Seed: r.Seed})
				tf.Train(r.glove, r.Epochs)
				return core.NewTypeAwareEmbedder(r.C.G, core.TransformerWordEmbedder{M: tf}, 2, r.Seed)
			})}
	case VShortEmb:
		m = core.Models{Seq: r.seqOf(VRExt, func() nn.SequenceModel { return lstm(64) }),
			Word: r.wordOf(VShortEmb, func() embed.Embedder { return glove(32) })}
	case VBertSeq:
		m = core.Models{Seq: r.seqOf(VBertSeq, func() nn.SequenceModel {
			tf := nn.NewTransformer(r.vocab, nn.TransformerConfig{Seed: r.Seed})
			tf.Train(r.corpus, r.Epochs)
			return tf
		}), Word: r.wordOf(VRExt, func() embed.Embedder { return glove(64) })}
	case VShortSeq:
		m = core.Models{Seq: r.seqOf(VShortSeq, func() nn.SequenceModel { return lstm(16) }),
			Word: r.wordOf(VRExt, func() embed.Embedder { return glove(64) })}
	case VRndPath:
		m = core.Models{RandomPaths: true,
			Word: r.wordOf(VRExt, func() embed.Embedder { return glove(64) })}
	default:
		panic("expr: unknown variant " + string(v)) //lint:allow nopanic exhaustive switch over the closed Variant enum
	}
	r.models[v] = m
	return m
}

// seqOf / wordOf memoise sub-models under a sharing key so variants that
// share a component (every non-*Seq variant uses the same LSTM, every
// non-*Emb variant the same GloVe) train it once.
func (r *Run) seqOf(key Variant, build func() nn.SequenceModel) nn.SequenceModel {
	if r.seqCache == nil {
		r.seqCache = map[Variant]nn.SequenceModel{}
	}
	if m, ok := r.seqCache[key]; ok {
		return m
	}
	m := build()
	r.seqCache[key] = m
	return m
}

func (r *Run) wordOf(key Variant, build func() embed.Embedder) embed.Embedder {
	if r.wordCache == nil {
		r.wordCache = map[Variant]embed.Embedder{}
	}
	if m, ok := r.wordCache[key]; ok {
		return m
	}
	m := build()
	r.wordCache[key] = m
	return m
}
