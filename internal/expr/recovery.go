package expr

import (
	"time"

	"semjoin/internal/core"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// RecoveryOptions parameterises one column-drop recovery run (Exp-2).
type RecoveryOptions struct {
	// Variant selects the method (default VRExt).
	Variant Variant
	// DropAttrs are the columns removed and recovered; empty means every
	// recoverable attribute of the main relation (m = len(DropAttrs)).
	DropAttrs []string
	// ExtraKeywords appends value exemplars to A (the |A| sweep).
	ExtraKeywords []string
	// K, H override the RExt defaults when non-zero.
	K, H int
	// NoiseFrac injects clustering label noise (Fig 5(f)).
	NoiseFrac float64
	// HERNoise corrupts this fraction of HER matches (Fig 5(g), η).
	HERNoise float64
}

// RecoveryResult is the outcome of one recovery run.
type RecoveryResult struct {
	PerAttr map[string]PRF
	Mean    PRF
	// Seconds is the wall time of pattern discovery + extraction.
	Seconds float64
}

// Recovery runs the Exp-2 protocol on r's main relation: drop the chosen
// columns, extract them back from the graph via a semantic join with
// keywords equal to the dropped attribute names, and score against the
// original columns.
func Recovery(r *Run, opt RecoveryOptions) RecoveryResult {
	if opt.Variant == "" {
		opt.Variant = VRExt
	}
	c := r.C
	drop := opt.DropAttrs
	if len(drop) == 0 {
		drop = c.Recoverable[c.MainRel]
	}
	reduced, truth := c.Drop(c.MainRel, drop)

	keywords := append([]string(nil), drop...)

	var matcher her.Matcher = c.Oracle(c.MainRel)
	if opt.HERNoise > 0 {
		matcher = her.WithNoise(matcher, opt.HERNoise, r.Seed+21)
	}

	cfg := core.Config{
		K: opt.K, H: opt.H, Keywords: keywords,
		Exemplars: opt.ExtraKeywords,
		MaxAttrs:  len(drop),
		Seed:      r.Seed,
		NoiseFrac: opt.NoiseFrac,
	}
	models := r.Models(opt.Variant)

	start := time.Now()
	enriched, err := core.EnrichmentJoin(reduced, c.G, models, matcher, keywords, cfg)
	secs := time.Since(start).Seconds()
	if err != nil {
		return RecoveryResult{PerAttr: map[string]PRF{}, Seconds: secs}
	}

	res := RecoveryResult{PerAttr: map[string]PRF{}, Seconds: secs}
	var all []PRF
	key := c.Main().Schema.Key
	for _, attr := range drop {
		p := ValueRecovery(enriched, key, attr, truth[attr])
		res.PerAttr[attr] = p
		all = append(all, p)
	}
	res.Mean = Mean(all)
	return res
}

// RecoverRelation exposes the enriched relation itself (examples use it).
func RecoverRelation(r *Run, opt RecoveryOptions) (*rel.Relation, error) {
	if opt.Variant == "" {
		opt.Variant = VRExt
	}
	c := r.C
	drop := opt.DropAttrs
	if len(drop) == 0 {
		drop = c.Recoverable[c.MainRel]
	}
	reduced, _ := c.Drop(c.MainRel, drop)
	cfg := core.Config{K: opt.K, H: opt.H, Keywords: drop, MaxAttrs: len(drop), Seed: r.Seed}
	return core.EnrichmentJoin(reduced, c.G, r.Models(opt.Variant), c.Oracle(c.MainRel), drop, cfg)
}
