package semjoin_test

import (
	"fmt"
	"sort"

	"semjoin"
)

// buildExampleWorld creates a deterministic miniature world: two
// companies issuing six products, registered in two countries.
func buildExampleWorld() (*semjoin.Graph, *semjoin.Relation, map[string]semjoin.VertexID) {
	g := semjoin.NewGraph()
	uk := g.AddVertex("UK", "country")
	us := g.AddVertex("US", "country")
	acme := g.AddVertex("Acme Corp", "company")
	globex := g.AddVertex("Globex Corp", "company")
	g.AddEdge(acme, "registered_in", uk)
	g.AddEdge(globex, "registered_in", us)

	products := semjoin.NewRelation(semjoin.NewSchema("product", "pid",
		semjoin.Attribute{Name: "pid"}, semjoin.Attribute{Name: "name"}))
	truth := map[string]semjoin.VertexID{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("gadget %02d", i)
		v := g.AddVertex(name, "product")
		issuer := acme
		if i%2 == 1 {
			issuer = globex
		}
		g.AddEdge(issuer, "issues", v)
		pid := fmt.Sprintf("p%02d", i)
		products.InsertVals(semjoin.S(pid), semjoin.S(name))
		truth[pid] = v
	}
	return g, products, truth
}

// ExampleEnrichmentJoin extracts attributes that exist only in the graph.
func ExampleEnrichmentJoin() {
	g, products, truth := buildExampleWorld()
	models := semjoin.TrainModels(g, 8, 1)
	out, err := semjoin.EnrichmentJoin(products, g, models,
		semjoin.NewOracleMatcher(truth), []string{"country"},
		semjoin.RExtConfig{K: 2, H: 6, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var rows []string
	for _, t := range out.Tuples {
		rows = append(rows, out.Get(t, "pid").Str()+" "+out.Get(t, "country").Str())
	}
	sort.Strings(rows)
	for _, r := range rows {
		fmt.Println(r)
	}
	// Output:
	// p00 UK
	// p01 US
	// p02 UK
	// p03 US
	// p04 UK
	// p05 US
}

// ExampleEngine_Query answers a gSQL query with an e-join statically,
// using pre-materialised extractions — no HER or RExt at query time.
func ExampleEngine_Query() {
	g, products, truth := buildExampleWorld()
	models := semjoin.TrainModels(g, 8, 1)
	matcher := semjoin.NewOracleMatcher(truth)
	mat, err := semjoin.BuildMaterialized(g, models, map[string]semjoin.BaseSpec{
		"product": {D: products, AR: []string{"company", "country"}, Matcher: matcher},
	}, semjoin.RExtConfig{K: 2, H: 6, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	eng := semjoin.NewEngine(&semjoin.Catalog{
		Relations: map[string]*semjoin.Relation{"product": products},
		Graphs:    map[string]*semjoin.Graph{"G": g},
		Models:    models, Matcher: matcher, Mat: mat, K: 2,
	})
	out, err := eng.Query(`
		select pid, company from product e-join G <company, country> as T
		where T.country = 'UK' order by pid`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, t := range out.Tuples {
		fmt.Println(out.Get(t, "pid").Str(), out.Get(t, "company").Str())
	}
	// Output:
	// p00 Acme Corp
	// p02 Acme Corp
	// p04 Acme Corp
}
