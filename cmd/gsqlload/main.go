// Command gsqlload is a load generator for the gsql network server.
// It drives many concurrent client sessions with seeded mixed gSQL
// workloads (the difftest generator's query families: predicated
// selects, order by/limit/distinct, aggregates, cross joins, e-joins
// and l-joins, plus session SETs and prepared statements) and reports
// throughput, tail latency (p50/p95/p99) and error/shed rates.
//
// Two modes:
//
//	gsqlload -addr host:7483 -clients 200 -requests 50
//	    drive an already-running server (gsql -serve) over TCP
//
//	gsqlload -selftest -clients 1000 -requests 20
//	    boot an in-process server over a seeded fixture and drive it
//	    through synchronous pipes — no ports, no fd limits; the mode
//	    CI uses, and the one that proves N clients against one engine
//
// Exit status: 0 on a clean run; 1 when -fail-on-error / -fail-on-shed
// / leak detection (selftest) trip; 2 on usage or setup errors.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/gsql"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
	"semjoin/internal/server"
	"semjoin/internal/wal"
)

func main() {
	addr := flag.String("addr", "", "server address to drive (host:port)")
	selftest := flag.Bool("selftest", false, "boot an in-process server over a seeded fixture and drive it")
	clients := flag.Int("clients", 64, "concurrent client sessions")
	requests := flag.Int("requests", 20, "requests per client")
	seed := flag.Int64("seed", 7, "workload seed (fixture + per-client query streams)")
	maxConcurrent := flag.Int("max-concurrent", 0, "selftest server: queries executing at once (0 = 2×GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "selftest server: queue depth before shedding (0 = 2×clients)")
	queueWaitMS := flag.Int("queue-wait-ms", 30000, "selftest server: longest queue wait before shedding")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	failOnError := flag.Bool("fail-on-error", false, "exit 1 when any request fails with a non-busy error")
	failOnShed := flag.Bool("fail-on-shed", false, "exit 1 when any request is shed (busy)")
	checkLeaks := flag.Bool("check-leaks", false, "selftest: exit 1 when goroutines leak after shutdown")
	traceSlowest := flag.Int("trace-slowest", 0, "after the run, fetch and print the span trees of the N slowest requests")
	debugURL := flag.String("debug-url", "", "debug endpoint base URL (e.g. http://127.0.0.1:8077) for -trace-slowest fetches; selftest reads in-process when empty")
	ingestEvery := flag.Int("ingest-every", 0, "make every Nth request a durable ingest batch (0 = read-only workload); the target store must be open (gsql -data-dir, or automatic in selftest)")
	ingestBase := flag.String("ingest-base", "product", "durable store ingest batches target")
	flag.Parse()

	if (*addr == "") == !*selftest {
		fmt.Fprintln(os.Stderr, "gsqlload: exactly one of -addr or -selftest is required")
		os.Exit(2)
	}

	var dial func() (net.Conn, error)
	var shutdown func() error
	baseGoroutines := runtime.NumGoroutine()
	if *selftest {
		fix, err := difftest.Build(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsqlload: fixture:", err)
			os.Exit(2)
		}
		if *ingestEvery > 0 {
			// Mixed read/update selftest: open the target store over an
			// in-memory filesystem so ingest requests have a WAL to hit.
			fix.Cat.DurableOpts = core.DurableOptions{Policy: wal.SyncBatch, FS: wal.NewMemFS()}
			if _, err := gsql.NewEngine(fix.Cat).Query(fmt.Sprintf("OPEN %s db", *ingestBase)); err != nil {
				fmt.Fprintln(os.Stderr, "gsqlload: open durable store:", err)
				os.Exit(2)
			}
		}
		mq := *maxQueue
		if mq == 0 {
			// Default the queue to absorb every client at once: the
			// low-load smoke asserts zero shed, so the queue must not
			// be the thing that sheds.
			mq = 2 * *clients
		}
		srv, err := server.New(server.Config{
			Cat: fix.Cat, Mode: gsql.ModeAuto, Reg: obs.NewRegistry(),
			Limits: server.Limits{
				MaxConcurrent: *maxConcurrent,
				MaxQueue:      mq,
				QueueWait:     time.Duration(*queueWaitMS) * time.Millisecond,
				MaxSessions:   2 * *clients,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsqlload:", err)
			os.Exit(2)
		}
		dial = func() (net.Conn, error) {
			cli, srvEnd := net.Pipe()
			srv.ServeConn(srvEnd)
			return cli, nil
		}
		shutdown = func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			return srv.Shutdown(ctx)
		}
	} else {
		dial = func() (net.Conn, error) { return net.Dial("tcp", *addr) }
		shutdown = func() error { return nil }
	}

	topN := *traceSlowest
	if topN <= 0 {
		topN = 3 // always surface a few IDs in the report, even without full trees
	}
	sum := run(dial, *clients, *requests, *seed, topN, *ingestEvery, *ingestBase)
	if *traceSlowest > 0 {
		// Fetch before shutdown: the selftest path reads the in-process
		// trace store, which outlives Shutdown, but a remote server may
		// not outlive the run script.
		attachTraceTrees(&sum, *debugURL, *selftest)
	}
	if err := shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "gsqlload: shutdown:", err)
		os.Exit(1)
	}
	leaked := 0
	if *selftest && *checkLeaks {
		leaked = settleGoroutines(baseGoroutines, 10*time.Second)
	}
	report(sum, leaked, *jsonOut)

	switch {
	case *failOnError && sum.Errors > 0:
		fmt.Fprintf(os.Stderr, "gsqlload: FAIL: %d request errors\n", sum.Errors)
		os.Exit(1)
	case *failOnShed && sum.Shed > 0:
		fmt.Fprintf(os.Stderr, "gsqlload: FAIL: %d requests shed\n", sum.Shed)
		os.Exit(1)
	case leaked > 0:
		fmt.Fprintf(os.Stderr, "gsqlload: FAIL: %d goroutines leaked after shutdown\n", leaked)
		os.Exit(1)
	}
}

// summary aggregates one run.
type summary struct {
	Clients    int        `json:"clients"`
	Requests   int        `json:"requests"`
	OK         int        `json:"ok"`
	Ingested   int        `json:"ingested,omitempty"`
	Errors     int        `json:"errors"`
	Shed       int        `json:"shed"`
	DialErrors int        `json:"dial_errors"`
	WallSec    float64    `json:"wall_sec"`
	Throughput float64    `json:"requests_per_sec"`
	P50MS      float64    `json:"p50_ms"`
	P95MS      float64    `json:"p95_ms"`
	P99MS      float64    `json:"p99_ms"`
	MaxMS      float64    `json:"max_ms"`
	FirstError string     `json:"first_error,omitempty"`
	Slowest    []reqTrace `json:"slowest_traces,omitempty"`
	ShedIDs    []string   `json:"shed_trace_ids,omitempty"`
}

// reqTrace identifies one traced request: enough to find it again on
// the server's /traces endpoint. Tree is filled by -trace-slowest.
type reqTrace struct {
	TraceID string  `json:"trace_id"`
	LatMS   float64 `json:"lat_ms"`
	Query   string  `json:"query,omitempty"`
	Tree    string  `json:"tree,omitempty"`
}

// clientResult is one session's tally.
type clientResult struct {
	lat        []time.Duration
	ok         int
	ingested   int
	errs       int
	shed       int
	dialErr    bool
	firstError string
	traced     []reqTrace
	shedIDs    []string
}

// run launches the client fleet and merges their tallies, keeping the
// topN slowest traced requests and up to a handful of shed trace IDs.
func run(dial func() (net.Conn, error), clients, requests int, seed int64, topN, ingestEvery int, ingestBase string) summary {
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveClient(dial, seed+int64(i)*7919, requests, ingestEvery, ingestBase)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	sum := summary{Clients: clients, WallSec: wall.Seconds()}
	var all []time.Duration
	var traced []reqTrace
	for _, r := range results {
		sum.OK += r.ok
		sum.Ingested += r.ingested
		sum.Errors += r.errs
		sum.Shed += r.shed
		if r.dialErr {
			sum.DialErrors++
		}
		if sum.FirstError == "" {
			sum.FirstError = r.firstError
		}
		all = append(all, r.lat...)
		traced = append(traced, r.traced...)
		sum.ShedIDs = append(sum.ShedIDs, r.shedIDs...)
	}
	sort.Slice(traced, func(i, j int) bool { return traced[i].LatMS > traced[j].LatMS })
	if len(traced) > topN {
		traced = traced[:topN]
	}
	sum.Slowest = traced
	if len(sum.ShedIDs) > 10 {
		sum.ShedIDs = sum.ShedIDs[:10]
	}
	sum.Requests = sum.OK + sum.Errors + sum.Shed
	if wall > 0 {
		sum.Throughput = float64(sum.Requests) / wall.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sum.P50MS = pctMS(all, 0.50)
	sum.P95MS = pctMS(all, 0.95)
	sum.P99MS = pctMS(all, 0.99)
	if n := len(all); n > 0 {
		sum.MaxMS = float64(all[n-1]) / float64(time.Millisecond)
	}
	return sum
}

// driveClient runs one session: dial, read the hello banner, then a
// seeded request stream. Every fourth client diverges its session
// state (SET PARALLELISM / SET VECTORIZED OFF) to keep the
// per-session knobs hot under load, and every client exercises one
// prepared statement with a bound parameter.
func driveClient(dial func() (net.Conn, error), seed int64, requests int, ingestEvery int, ingestBase string) clientResult {
	var res clientResult
	conn, err := dial()
	if err != nil {
		res.dialErr = true
		res.firstError = err.Error()
		return res
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 16<<20)

	var hello server.Response
	if !readResp(sc, &hello) || hello.Code != "hello" {
		res.dialErr = true
		res.firstError = "no hello banner"
		return res
	}

	rng := rand.New(rand.NewSource(seed))
	gen := difftest.NewGen(seed)
	roundTrip := func(req server.Request) (server.Response, bool) {
		var resp server.Response
		if err := enc.Encode(req); err != nil {
			res.firstError = err.Error()
			return resp, false
		}
		if !readResp(sc, &resp) {
			res.firstError = "connection dropped mid-response"
			return resp, false
		}
		return resp, true
	}
	tally := func(resp server.Response, lat time.Duration, query string) {
		switch {
		case resp.OK:
			res.ok++
			res.lat = append(res.lat, lat)
			if resp.TraceID != "" {
				res.traced = append(res.traced, reqTrace{
					TraceID: resp.TraceID,
					LatMS:   float64(lat) / float64(time.Millisecond),
					Query:   truncate(query, 80),
				})
			}
		case resp.Code == "busy":
			res.shed++
			if resp.TraceID != "" {
				res.shedIDs = append(res.shedIDs, resp.TraceID)
			}
		default:
			res.errs++
			if res.firstError == "" {
				res.firstError = resp.Error
			}
		}
	}

	switch rng.Intn(4) {
	case 0:
		if resp, ok := roundTrip(server.Request{Op: server.OpQuery, Query: "set parallelism 2"}); ok {
			tally(resp, 0, "set parallelism 2")
		}
	case 1:
		if resp, ok := roundTrip(server.Request{Op: server.OpQuery, Query: "set vectorized off"}); ok {
			tally(resp, 0, "set vectorized off")
		}
	}
	if resp, ok := roundTrip(server.Request{
		Op: server.OpPrepare, Name: "by_price",
		Query: "select pid, price from product where price >= $1",
	}); !ok || !resp.OK {
		res.errs++
		return res
	}

	for i := 0; i < requests; i++ {
		var req server.Request
		if ingestEvery > 0 && i%ingestEvery == ingestEvery-1 {
			// A small durable graph batch: fresh vertices always apply;
			// the edge between two low ids may no-op on a mutated graph,
			// which is exactly the tolerance real feeds need.
			req = server.Request{Op: server.OpIngest, Base: ingestBase, Kind: "graph",
				Updates: []server.IngestUpdate{
					{Op: "insert_vertex", Label: fmt.Sprintf("load %d-%d", seed, i), Type: "company"},
					{Op: "insert_edge", From: int64(rng.Intn(4)), To: int64(rng.Intn(4)), Label: "load_link"},
				}}
		} else if i%5 == 4 {
			req = server.Request{Op: server.OpExec, Name: "by_price", Args: []any{float64(60 + 10*rng.Intn(10))}}
		} else {
			req = server.Request{Op: server.OpQuery, Query: gen.Query()}
		}
		start := time.Now()
		resp, ok := roundTrip(req)
		if !ok {
			res.errs++
			return res
		}
		label := req.Query
		if req.Op == server.OpIngest {
			label = "ingest " + req.Kind
			if resp.OK {
				res.ingested++
			}
		}
		tally(resp, time.Since(start), label)
	}
	resp, ok := roundTrip(server.Request{Op: server.OpClose})
	_ = resp
	_ = ok
	return res
}

// attachTraceTrees fills in the span tree of each slowest-request
// entry. With -debug-url it fetches /traces/<id>?format=text from the
// server's debug endpoint; in selftest mode (no URL) it reads the
// in-process default trace store directly — same store the debug
// endpoint would serve. Missing traces (evicted, or sampled out at a
// low -trace-sample) are noted, not fatal.
func attachTraceTrees(sum *summary, debugURL string, selftest bool) {
	for i := range sum.Slowest {
		id := sum.Slowest[i].TraceID
		tree, err := fetchTrace(debugURL, selftest, id)
		if err != nil {
			tree = "trace " + id + " unavailable: " + err.Error()
		}
		sum.Slowest[i].Tree = tree
	}
}

// fetchTrace returns the rendered span tree for one trace ID.
func fetchTrace(debugURL string, selftest bool, id string) (string, error) {
	if debugURL == "" {
		if !selftest {
			return "", fmt.Errorf("no -debug-url given")
		}
		t := obs.DefaultTraces.Get(id)
		if t == nil {
			return "", fmt.Errorf("not in trace store (evicted or sampled out)")
		}
		return obs.TraceText(t), nil
	}
	url := strings.TrimRight(debugURL, "/") + "/traces/" + id + "?format=text"
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// truncate caps s at n runes for display.
func truncate(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// readResp scans one response line into out.
func readResp(sc *bufio.Scanner, out *server.Response) bool {
	if !sc.Scan() {
		return false
	}
	return json.Unmarshal(sc.Bytes(), out) == nil
}

// pctMS reads the p-quantile off a sorted latency slice, in ms.
func pctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// settleGoroutines waits for the goroutine count to return to at most
// base, returning the excess still present at the deadline (0 = clean).
func settleGoroutines(base int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() - base
}

// report prints the run summary.
func report(s summary, leaked int, asJSON bool) {
	if asJSON {
		b, err := json.MarshalIndent(struct {
			summary
			LeakedGoroutines int `json:"leaked_goroutines"`
		}{s, leaked}, "", "  ")
		if err == nil {
			fmt.Println(string(b))
		}
		return
	}
	fmt.Printf("clients=%d requests=%d ok=%d errors=%d shed=%d dial_errors=%d\n",
		s.Clients, s.Requests, s.OK, s.Errors, s.Shed, s.DialErrors)
	if s.Ingested > 0 {
		fmt.Printf("ingested=%d durable batches\n", s.Ingested)
	}
	fmt.Printf("wall=%.2fs throughput=%.0f req/s\n", s.WallSec, s.Throughput)
	fmt.Printf("latency p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	if leaked > 0 {
		fmt.Printf("leaked goroutines: %d\n", leaked)
	}
	if s.FirstError != "" {
		fmt.Printf("first error: %s\n", s.FirstError)
	}
	if len(s.Slowest) > 0 {
		fmt.Println("slowest requests:")
		for _, rt := range s.Slowest {
			fmt.Printf("  %s  %8.2fms  %s\n", rt.TraceID, rt.LatMS, rt.Query)
		}
	}
	if len(s.ShedIDs) > 0 {
		fmt.Printf("shed trace ids: %s\n", strings.Join(s.ShedIDs, " "))
	}
	for _, rt := range s.Slowest {
		if rt.Tree != "" {
			fmt.Printf("\n--- trace %s (%.2fms) ---\n%s", rt.TraceID, rt.LatMS, rt.Tree)
		}
	}
}
