package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semjoin/internal/expr"
	"semjoin/internal/gsql"
	"semjoin/internal/obs"
	"semjoin/internal/server"
)

// serveNetwork runs the long-running multi-session server over env's
// catalog: binds addr, serves sessions until SIGINT/SIGTERM, then
// shuts down gracefully (in-flight queries cancelled, sessions
// drained, 10s grace). Traces land in obs.DefaultTraces — the store
// the -debug-addr endpoint serves — sampled by tracer; log receives
// structured session/shed/query records.
func serveNetwork(env *expr.QueryEnv, addr string, lim server.Limits, tracer *obs.Tracer, log *obs.Logger) error {
	srv, err := server.New(server.Config{
		Cat:    env.Cat,
		Mode:   gsql.ModeAuto,
		Limits: lim,
		Tracer: tracer,
		Log:    log,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	fmt.Printf("gsql server listening on %s (max-concurrent=%d max-queue=%d max-sessions=%d)\n",
		ln.Addr(), srv.Controller().Limits().MaxConcurrent,
		srv.Controller().Limits().MaxQueue, srv.Controller().Limits().MaxSessions)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case sig := <-sigc:
		fmt.Printf("signal %v: shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	case err := <-errc:
		return err
	}
}
