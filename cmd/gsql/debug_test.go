package main

import (
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStartDebugServerFailsFastOnBusyAddress pins the fail-fast
// contract: when the debug address cannot be bound, startDebugServer
// must return an error (which main turns into a non-zero exit) rather
// than logging to stderr and carrying on as if the endpoint were up.
func TestStartDebugServerFailsFastOnBusyAddress(t *testing.T) {
	// Occupy a port, then ask the debug server for the same one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := startDebugServer(ln.Addr().String()); err == nil {
		t.Fatalf("startDebugServer(%s) on an occupied port: want error, got nil", ln.Addr())
	}
	if _, err := startDebugServer("256.0.0.1:bogus"); err == nil {
		t.Fatal("startDebugServer on an unparseable address: want error, got nil")
	}
}

// TestStartDebugServerServes checks the success path end to end: a
// free-port bind returns the resolved address and /metrics answers.
func TestStartDebugServerServes(t *testing.T) {
	addr, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", resp.Header.Get("Content-Type"))
	}
}
