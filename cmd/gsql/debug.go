package main

import (
	"fmt"
	"net"
	"net/http"
	"os"

	"semjoin/internal/obs"
)

// startDebugServer binds addr and serves the obs debug surface
// (/metrics, /queries, /traces, expvar, pprof) on it. It returns the bound
// address, or an error when the listen fails — the caller must treat
// that as fatal: a process that reports "debug server listening" and
// then silently serves nothing would defeat the monitoring the
// endpoint exists for, so main exits non-zero instead of limping on.
func startDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug-addr %s: %w", addr, err)
	}
	go func() {
		if err := http.Serve(ln, obs.DebugMux(obs.Default, obs.DefaultQueries, obs.DefaultTraces)); err != nil {
			// Serve only fails after a successful bind (listener torn
			// down at process exit); report it, the process is dying
			// anyway.
			fmt.Fprintln(os.Stderr, "debug server:", err)
		}
	}()
	return ln.Addr().String(), nil
}
