// Command gsql is an interactive shell for gSQL queries over one of the
// generated collections. It performs the offline preprocessing of §IV
// (model training, materialisation, graph profiling) at startup, then
// reads queries from stdin, printing results and the chosen join
// strategy (static / dynamic / heuristic / baseline).
//
// Usage:
//
//	gsql -collection Drugs -entities 60
//	> select cas, disease from drug e-join G <disease> as T where T.disease = 'Malaria'
//	> \mode baseline
//	> \tables
//	> \quit
//
// Real data instead of a generated collection: load a TSV graph and one
// or more CSV relations (HER then uses the similarity matcher):
//
//	gsql -graph kg.tsv -table product=products.csv:pid -keywords company,country
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/dataio"
	"semjoin/internal/expr"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
	"semjoin/internal/server"
	"semjoin/internal/wal"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	collection := flag.String("collection", "Drugs", "collection to load (Drugs, FakeNews, Movie, MovKB, Paper, Celebrity)")
	entities := flag.Int("entities", 60, "entities to generate")
	seed := flag.Uint64("seed", 7, "random seed")
	graphPath := flag.String("graph", "", "TSV graph file (switches to real-data mode)")
	keywords := flag.String("keywords", "", "comma-separated reference keywords AR (real-data mode)")
	epochs := flag.Int("epochs", 6, "sequence-model training epochs (real-data mode)")
	query := flag.String("query", "", "execute one query and exit (batch mode)")
	saveModels := flag.String("savemodels", "", "after training, persist the model pair to this file")
	loadModels := flag.String("loadmodels", "", "load a persisted model pair instead of training (real-data mode)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /queries, expvar and pprof on this address (e.g. :8077)")
	serveAddr := flag.String("serve", "", "run as a network server on this address (e.g. :7483) instead of a REPL; JSON-lines wire protocol, one session per connection")
	maxConcurrent := flag.Int("max-concurrent", 0, "server mode: queries executing at once (0 = 2×GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "server mode: requests queued beyond that before shedding (0 = 16×max-concurrent)")
	maxSessions := flag.Int("max-sessions", 0, "server mode: concurrent session cap (0 = 4096)")
	queueWaitMS := flag.Int("queue-wait-ms", 0, "server mode: longest queue wait before shedding (0 = 5000)")
	traceSample := flag.Float64("trace-sample", 1.0, "fraction of query traces to keep for /traces and SHOW TRACES (0..1; shed, slow and TRACE'd queries are always kept)")
	traceSlowMS := flag.Int("trace-slow-ms", 0, "always keep traces of queries at least this slow, regardless of -trace-sample (0 = disabled)")
	logLevel := flag.String("log-level", "info", "structured JSON log level on stderr: debug, info, warn, error")
	dataDir := flag.String("data-dir", "", "open a write-ahead-logged store per materialized base under this directory; updates stream through the WAL and a restart replays them")
	fsync := flag.String("fsync", "batch", "WAL sync policy for -data-dir: always (fsync per record), batch (group commit), never")
	checkpointEvery := flag.Int("checkpoint-every", 0, "auto-checkpoint a durable store after this many WAL records (0 = manual CHECKPOINT only)")
	var tables tableFlags
	flag.Var(&tables, "table", "name=file.csv[:keycol], repeatable (real-data mode)")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)
	tracer := obs.NewTracer(*traceSample, time.Duration(*traceSlowMS)*time.Millisecond)

	if *debugAddr != "" {
		addr, err := startDebugServer(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("debug server listening on http://%s\n", addr)
	}

	start := time.Now()
	var env *expr.QueryEnv
	if *graphPath != "" {
		env, err = loadRealData(*graphPath, tables, *keywords, *epochs, *seed, *loadModels)
	} else {
		fmt.Printf("loading %s (%d entities), training models and materialising...\n", *collection, *entities)
		var r *expr.Run
		r, err = expr.Prepare(*collection, *entities, *seed)
		if err == nil {
			env, err = expr.NewQueryEnv(r)
		}
		if err == nil {
			fmt.Printf("graph: %d vertices, %d edges\n", r.C.G.NumVertices(), r.C.G.NumEdges())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("ready in %.1fs\n", time.Since(start).Seconds())
	if *dataDir != "" {
		if err := openDurableStores(env, *dataDir, *fsync, *checkpointEvery); err != nil {
			fmt.Fprintln(os.Stderr, "data-dir:", err)
			os.Exit(1)
		}
		defer func() {
			if err := env.Cat.Durable.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "durable close:", err)
			}
		}()
	}
	if *serveAddr != "" {
		if err := serveNetwork(env, *serveAddr, server.Limits{
			MaxConcurrent: *maxConcurrent,
			MaxQueue:      *maxQueue,
			MaxSessions:   *maxSessions,
			QueueWait:     time.Duration(*queueWaitMS) * time.Millisecond,
		}, tracer, logger); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		return
	}
	// REPL and batch engines share the flag-configured tracer/logger so
	// TRACE / SHOW TRACES and /traces behave identically to server mode.
	newEngine := func(m gsql.Mode) *gsql.Engine {
		e := env.Engine(m)
		e.Tracer = tracer
		e.Log = logger
		return e
	}
	if *query != "" {
		eng := newEngine(gsql.ModeAuto)
		runQuery(eng, strings.TrimSuffix(strings.TrimSpace(*query), ";"))
		return
	}
	if *saveModels != "" {
		if err := persistModels(*saveModels, env.Cat.Models); err != nil {
			fmt.Fprintln(os.Stderr, "savemodels:", err)
		} else {
			fmt.Printf("models saved to %s\n", *saveModels)
		}
	}
	printTables(env)
	fmt.Println(`type a gSQL query ending in ';' (prefix with 'explain' for the plan, 'explain analyze' for the trace; 'show metrics;' dumps counters), or \tables, \mode auto|baseline|heuristic, \plan, \quit`)

	mode := gsql.ModeAuto
	eng := newEngine(mode)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("gsql> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			printTables(env)
			fmt.Print("gsql> ")
			continue
		case line == `\plan`:
			for _, p := range eng.Plan {
				fmt.Println(" ", p)
			}
			fmt.Print("gsql> ")
			continue
		case strings.HasPrefix(line, `\mode`):
			switch strings.TrimSpace(strings.TrimPrefix(line, `\mode`)) {
			case "auto":
				mode = gsql.ModeAuto
			case "baseline":
				mode = gsql.ModeBaseline
			case "heuristic":
				mode = gsql.ModeHeuristic
			default:
				fmt.Println("modes: auto, baseline, heuristic")
			}
			eng = newEngine(mode)
			fmt.Print("gsql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			fmt.Print("  ... ")
			continue
		}
		q := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		if q != "" {
			runQuery(eng, q)
		}
		fmt.Print("gsql> ")
	}
}

func runQuery(eng *gsql.Engine, q string) {
	trimmed := strings.TrimSpace(q)
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "explain") {
		var text string
		var err error
		if rest := strings.TrimSpace(trimmed[7:]); len(rest) >= 7 && strings.EqualFold(rest[:7], "analyze") {
			text, err = eng.ExplainAnalyze(trimmed)
		} else {
			text, err = eng.Explain(trimmed)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(text)
		return
	}
	start := time.Now()
	out, err := eng.Query(q)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(out.String())
	fmt.Printf("(%d rows in %s)\n", out.Len(), elapsed.Round(time.Microsecond))
	for _, p := range eng.Plan {
		fmt.Println("  plan:", p)
	}
}

func printTables(env *expr.QueryEnv) {
	var names []string
	for n := range env.Cat.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := env.Cat.Relations[n]
		fmt.Printf("  %s (%d rows)", r.Schema, r.Len())
		if b := matBase(env, n); b != nil {
			fmt.Printf("  AR=%v", b.AR())
		}
		fmt.Println()
	}
	fmt.Println("  graph: G")
}

// loadRealData builds a query environment from a TSV graph and CSV
// relations: trains models on the graph, runs HER with the similarity
// matcher, materialises every loaded table with the given AR keywords and
// profiles the graph's types for heuristic joins.
func loadRealData(graphPath string, tables tableFlags, keywordCSV string, epochs int, seed uint64, modelsPath string) (*expr.QueryEnv, error) {
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, _, err := dataio.LoadGraphTSV(gf)
	if err != nil {
		return nil, err
	}
	var models core.Models
	if modelsPath != "" {
		f, err := os.Open(modelsPath)
		if err != nil {
			return nil, err
		}
		models, err = core.LoadModels(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		fmt.Printf("graph: %d vertices, %d edges; models loaded from %s\n",
			g.NumVertices(), g.NumEdges(), modelsPath)
	} else {
		fmt.Printf("graph: %d vertices, %d edges; training models...\n", g.NumVertices(), g.NumEdges())
		models = core.TrainModels(g, epochs, seed)
	}

	var ar []string
	for _, kw := range strings.Split(keywordCSV, ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			ar = append(ar, kw)
		}
	}
	if len(ar) == 0 {
		// Fall back to profiled frequent labels across all types.
		for typ, toks := range core.FrequentLabels(g, 2) {
			if typ != "" {
				ar = append(ar, typ)
				_ = toks
			}
		}
		sort.Strings(ar)
		fmt.Printf("no -keywords given; profiled AR = %v\n", ar)
	}

	relations := map[string]*rel.Relation{}
	specs := map[string]core.BaseSpec{}
	matcher := her.NewSimilarityMatcher(her.Config{})
	for _, spec := range tables {
		eq := strings.IndexByte(spec, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad -table %q (want name=file.csv[:keycol])", spec)
		}
		name, rest := spec[:eq], spec[eq+1:]
		path, key := rest, ""
		if c := strings.LastIndexByte(rest, ':'); c > 1 { // after drive-letter-free paths
			path, key = rest[:c], rest[c+1:]
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r, err := dataio.LoadRelationCSV(f, name, key)
		f.Close()
		if err != nil {
			return nil, err
		}
		relations[name] = r
		if key != "" && len(ar) > 0 {
			specs[name] = core.BaseSpec{D: r, AR: ar, Matcher: matcher}
		}
		fmt.Printf("table %s: %d rows (key %q)\n", name, r.Len(), key)
	}
	var mat *core.Materialized
	if len(specs) > 0 {
		fmt.Println("materialising f(D,G) and h(D,G)...")
		if mat, err = core.BuildMaterialized(g, models, specs, core.Config{Seed: seed, Obs: obs.Default}); err != nil {
			return nil, err
		}
	}
	kwByType := map[string][]string{}
	for _, typ := range g.Types() {
		if typ != "" && typ != "misc" {
			kwByType[typ] = ar
		}
	}
	profiles := core.ProfileGraph(g, models, kwByType, 4, core.Config{Seed: seed})

	cat := &gsql.Catalog{
		Relations: relations,
		Graphs:    map[string]*graph.Graph{"G": g},
		Models:    models,
		Matcher:   matcher,
		Mat:       mat,
		Heur:      core.NewHeuristicJoiner(profiles),
		K:         3,
		RExt:      core.Config{Seed: seed},
	}
	return &expr.QueryEnv{Cat: cat}, nil
}

// openDurableStores opens (or recovers) one WAL-backed store per
// materialized base under dir, reusing the gSQL OPEN statement so the
// catalog rebinding logic is identical to an interactive OPEN. Each
// store lives in its own subdirectory dir/<base>.
func openDurableStores(env *expr.QueryEnv, dir, fsync string, checkpointEvery int) error {
	policy, err := wal.ParseSyncPolicy(fsync)
	if err != nil {
		return err
	}
	if env.Cat.Mat == nil {
		return fmt.Errorf("-data-dir needs at least one materialized base (keyed table with keywords)")
	}
	env.Cat.DurableOpts = core.DurableOptions{
		Policy: policy, CheckpointEvery: checkpointEvery, Reg: obs.Default,
	}
	var names []string
	for n := range env.Cat.Relations {
		if env.Cat.Mat.Base(n) != nil {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-data-dir needs at least one materialized base (keyed table with keywords)")
	}
	sort.Strings(names)
	eng := gsql.NewEngine(env.Cat)
	for _, n := range names {
		out, err := eng.Query(fmt.Sprintf("OPEN %s %s", n, filepath.Join(dir, n)))
		if err != nil {
			return fmt.Errorf("opening %s: %w", n, err)
		}
		st := env.Cat.Durable.Get(n)
		info := st.WALInfo()
		fmt.Printf("durable %s: dir=%s snapshot_seq=%d replayed=%d records (fsync=%s)\n",
			n, st.Dir(), st.SnapshotSeq(), info.Records, fsync)
		if info.Truncated {
			fmt.Printf("durable %s: torn tail truncated during recovery\n", n)
		}
		_ = out
	}
	return nil
}

// matBase returns the materialisation for a base, tolerating a nil
// Materialized (real-data mode without keyed tables).
func matBase(env *expr.QueryEnv, name string) *core.BaseMaterialization {
	if env.Cat.Mat == nil {
		return nil
	}
	return env.Cat.Mat.Base(name)
}

// persistModels writes the trained model pair to path.
func persistModels(path string, m core.Models) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return core.SaveModels(f, m)
}
