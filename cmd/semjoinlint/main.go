// Command semjoinlint runs the internal/lint analyzer suite: the
// engine's cross-layer invariants (no-panic library code, iterator
// Open/Close discipline, mutex release on every path, context-aware
// worker loops, nil-safe obs construction, span/trace lifecycles,
// WAL log-then-apply ordering, temp-file fsync/rename protocol and
// batch selection-vector discipline) checked at compile time.
//
// Two modes:
//
//	semjoinlint [-analyzers a,b] [-tests] [-json] [-sarif file]
//	            [-baseline file.json] [packages]
//
// loads, type-checks and analyzes the module packages matching the
// patterns (default ./...) and prints file:line:col: msg [analyzer]
// diagnostics, exiting 1 when any are found. -json swaps the text
// output for a machine-readable array (which doubles as the -baseline
// format); -sarif additionally writes a SARIF 2.1.0 log for
// code-scanning UIs; -baseline suppresses previously-recorded
// diagnostics so CI gates on new findings only; -tests includes
// _test.go files. Directive hygiene (stale or unknown //lint:allow)
// is reported under the allowcheck pseudo-analyzer.
//
//	go vet -vettool=$(which semjoinlint) ./...
//
// speaks cmd/go's vet tool protocol (-V=full, -flags, and the
// JSON vet.cfg unit files), so the suite also runs under the standard
// vet driver with its build cache.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"semjoin/internal/lint"
)

func main() {
	// The vet driver probes the tool before any unit of work:
	// `tool -V=full` must print a stable fingerprint line and
	// `tool -flags` the JSON list of analyzer flags (none here).
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			printVersion()
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		}
	}
	analyzerNames := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	jsonOut := flag.Bool("json", false, "print diagnostics as JSON (the -baseline format) instead of text")
	sarifPath := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "suppress diagnostics recorded in this -json file; exit 1 only on new findings")
	withTests := flag.Bool("tests", false, "include _test.go files in the analyzed packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: semjoinlint [-analyzers a,b] [-tests] [-json] [-sarif file] [-baseline file.json] [packages]\n       go vet -vettool=$(which semjoinlint) [packages]\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", lint.AllowCheckName, "//lint:allow directives must name a real analyzer and still suppress something")
	}
	flag.Parse()

	analyzers, allowCheck, err := selectAnalyzers(*analyzerNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(analyzers, allowCheck, args[0]))
	}
	os.Exit(runStandalone(analyzers, standaloneOpts{
		allowCheck: allowCheck,
		jsonOut:    *jsonOut,
		sarifPath:  *sarifPath,
		baseline:   *baselinePath,
		tests:      *withTests,
	}, args))
}

// selectAnalyzers resolves the -analyzers flag. The allowcheck
// pseudo-analyzer is not a suite member (it is a post-pass over the
// directive bookkeeping) but is addressable by name; it runs by
// default and whenever named explicitly.
func selectAnalyzers(names string) ([]*lint.Analyzer, bool, error) {
	if names == "" {
		return lint.All, true, nil
	}
	var out []*lint.Analyzer
	allowCheck := false
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == lint.AllowCheckName {
			allowCheck = true
			continue
		}
		a := lint.ByName(n)
		if a == nil {
			return nil, false, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, allowCheck, nil
}

// printVersion emits the `name version devel buildID=...` line the go
// command requires of a vet tool. The buildID is a content hash of
// the tool binary, so rebuilding semjoinlint invalidates go's vet
// cache exactly when the analyzers change.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("semjoinlint version devel buildID=%x\n", h.Sum(nil)[:16])
}

// ---------------------------------------------------------------- standalone

type standaloneOpts struct {
	allowCheck bool
	jsonOut    bool
	sarifPath  string
	baseline   string
	tests      bool
}

func runStandalone(analyzers []*lint.Analyzer, opts standaloneOpts, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	root, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	prog, err := lint.LoadWith(lint.LoadOpts{Tests: opts.tests}, root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	res, err := lint.Run(analyzers, prog.Targets())
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	diags := res.Diagnostics
	if opts.allowCheck {
		diags = append(diags, res.AllowCheck()...)
	}
	if opts.baseline != "" {
		base, err := lint.ReadBaselineFile(opts.baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semjoinlint:", err)
			return 2
		}
		diags = base.Filter(root, diags)
	}
	if opts.sarifPath != "" {
		out := os.Stdout
		if opts.sarifPath != "-" {
			f, err := os.Create(opts.sarifPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "semjoinlint:", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := lint.WriteSARIF(out, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "semjoinlint:", err)
			return 2
		}
	}
	switch {
	case opts.jsonOut:
		if err := lint.WriteJSON(os.Stdout, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "semjoinlint:", err)
			return 2
		}
	case opts.sarifPath == "-":
		// SARIF already went to stdout; skip the text listing.
	default:
		for _, d := range diags {
			fmt.Println(relativize(root, d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func relativize(root string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// ---------------------------------------------------------------- vet mode

// vetConfig is the subset of cmd/go's vet.cfg unit file the tool
// consumes (the driver writes more fields; unknown ones are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit described by a vet.cfg
// file, per the go vet tool protocol: diagnostics go to stderr, the
// (empty — this suite exports no facts) .vetx output must be written
// so the driver can cache the run, and the exit status is 0 for
// clean, 1 for diagnostics, 2 for failure.
func runVetUnit(analyzers []*lint.Analyzer, allowCheck bool, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "semjoinlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: the driver only wants exported facts, and
		// this suite has none.
		writeVetx()
		return 0
	}
	pkg, err := checkVetUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	res, err := lint.Run(analyzers, []*lint.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "semjoinlint:", err)
		return 2
	}
	diags := res.Diagnostics
	if allowCheck {
		diags = append(diags, res.AllowCheck()...)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// checkVetUnit parses and type-checks one unit using the export data
// the go command staged for its imports.
func checkVetUnit(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
