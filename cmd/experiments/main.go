// Command experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic collections. Absolute numbers differ
// from the paper's testbed; the shapes — who wins, by what factor, where
// quality plateaus or crosses over — are the reproduction target (see
// EXPERIMENTS.md).
//
// Usage:
//
//	experiments -exp all                 # everything (slow)
//	experiments -exp tableII|tableIII|casestudy
//	experiments -exp fig5a|fig5b|fig5c|fig5d|fig5e|fig5f|fig5g|fig5h
//	experiments -exp training|precompute|endtoend|incext
//	experiments -entities 120 -seed 7 -collections Drugs,Paper
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"semjoin/internal/expr"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, tableII, tableIII, casestudy, fig5a..fig5h, training, precompute, endtoend, incext)")
	entities := flag.Int("entities", 60, "entities per collection")
	seed := flag.Uint64("seed", 7, "random seed")
	collections := flag.String("collections", "", "comma-separated subset of collections")
	variants := flag.String("variants", "", "comma-separated subset of method variants")
	flag.Parse()

	o := expr.Options{Entities: *entities, Seed: *seed}
	if *collections != "" {
		o.Collections = strings.Split(*collections, ",")
	}
	if *variants != "" {
		for _, v := range strings.Split(*variants, ",") {
			o.Variants = append(o.Variants, expr.Variant(v))
		}
	}

	run := func(id string) bool { return *exp == "all" || *exp == id }
	w := os.Stdout
	any := false

	if run("tableII") {
		any = true
		fmt.Fprintln(w, "Table II — dataset collections")
		rows := [][]string{}
		rows = append(rows, []string{"collection", "tuples", "vertices", "edges"})
		for _, s := range expr.TableII(o) {
			rows = append(rows, []string{s.Name, fmt.Sprint(s.Tuples), fmt.Sprint(s.Vertices), fmt.Sprint(s.Edges)})
		}
		printAligned(rows)
		fmt.Fprintln(w)
	}
	if run("casestudy") {
		any = true
		fmt.Fprintln(w, "Exp-1 — case study (q1 drug conflicts, q2 fake-news topics)")
		cs, err := expr.CaseStudy(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "casestudy:", err)
		} else {
			fmt.Fprintf(w, "q1: %d conflicting same-disease pairs, accuracy %.2f\n", cs.Q1Pairs, cs.Q1Accuracy)
			fmt.Fprintf(w, "q1: Spinosad extracted disease %q (correct: %v)\n", cs.SpinosadDisease, cs.SpinosadCorrect)
			fmt.Fprintf(w, "q2: %d author topics, accuracy %.2f\n\n", cs.Q2Topics, cs.Q2Accuracy)
		}
	}
	figs := map[string]func(expr.Options) expr.Figure{
		"fig5a": expr.Fig5a, "fig5b": expr.Fig5b, "fig5c": expr.Fig5c,
		"fig5d": expr.Fig5d, "fig5e": expr.Fig5e, "fig5f": expr.Fig5f, "fig5g": expr.Fig5g,
	}
	for _, id := range []string{"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g"} {
		if run(id) {
			any = true
			expr.RenderFigure(w, figs[id](o))
		}
	}
	if run("varyA") {
		any = true
		expr.RenderFigure(w, expr.VaryA(o))
	}
	if run("fig5h") || run("incext") {
		any = true
		fmt.Fprintln(w, "Figure 5(h) / Exp-4 — IncExt vs RExt under ΔG")
		rows := expr.Fig5h(o)
		expr.RenderIncRows(w, rows)
		// Exp-4 summary: speedup at 5% and crossover point.
		fmt.Fprintln(w)
		byColl := map[string][]expr.IncRow{}
		for _, r := range rows {
			byColl[r.Collection] = append(byColl[r.Collection], r)
		}
		for coll, rs := range byColl {
			var at5 float64
			cross := "none up to 45%"
			for _, r := range rs {
				if r.IncSeconds <= 0 {
					continue
				}
				sp := r.ExtSeconds / r.IncSeconds
				if r.DeltaPct == 5 {
					at5 = sp
				}
				if sp < 1 {
					cross = fmt.Sprintf("%d%%", r.DeltaPct)
					break
				}
			}
			fmt.Fprintf(w, "%s: %.1fx at 5%% ΔG, crossover: %s\n", coll, at5, cross)
		}
		fmt.Fprintln(w)
	}
	if run("tableIII") {
		any = true
		fmt.Fprintln(w, "Table III — relative accuracy of heuristic joins")
		expr.RenderTableIII(w, expr.TableIII(o))
		fmt.Fprintln(w)
	}
	if run("training") {
		any = true
		fmt.Fprintln(w, "Exp-3(I)(a) — model training time")
		rows := [][]string{{"collection", "LSTM(s)", "Transformer(s)"}}
		for _, r := range expr.Training(o) {
			rows = append(rows, []string{r.Collection, fmt.Sprintf("%.1f", r.LSTMSeconds), fmt.Sprintf("%.1f", r.BertSeconds)})
		}
		printAligned(rows)
		fmt.Fprintln(w)
	}
	if run("precompute") {
		any = true
		fmt.Fprintln(w, "Exp-3(I)(b) — offline pre-extraction")
		rows := [][]string{{"collection", "seconds", "cells", "graph edges", "size ratio"}}
		for _, r := range expr.Precompute(o) {
			rows = append(rows, []string{r.Collection, fmt.Sprintf("%.1f", r.Seconds),
				fmt.Sprint(r.ExtractedCells), fmt.Sprint(r.GraphEdges), fmt.Sprintf("%.2f", r.SizeRatio)})
		}
		printAligned(rows)
		fmt.Fprintln(w)
	}
	if run("ablation") {
		any = true
		fmt.Fprintln(w, "Ablations — DESIGN.md extensions and ranking terms (Movie)")
		rows := [][]string{{"configuration", "F-measure", "seconds"}}
		for _, r := range expr.Ablations(o) {
			rows = append(rows, []string{r.Name, fmt.Sprintf("%.3f", r.F), fmt.Sprintf("%.2f", r.Seconds)})
		}
		printAligned(rows)
		fmt.Fprintln(w)
	}
	if run("rextscale") {
		any = true
		fmt.Fprintln(w, "Exp-3(III) — RExt scalability (full-relation extraction)")
		rows := [][]string{{"collection", "entities", "tuples", "edges", "seconds", "select", "embed", "cluster", "rank", "extract", "F"}}
		for _, r := range expr.ScaleSweep(o, nil) {
			rows = append(rows, []string{r.Collection, fmt.Sprint(r.Entities),
				fmt.Sprint(r.Tuples), fmt.Sprint(r.Edges), fmt.Sprintf("%.2f", r.Seconds),
				fmt.Sprintf("%.2f", r.Stages.Selection), fmt.Sprintf("%.2f", r.Stages.Embedding),
				fmt.Sprintf("%.2f", r.Stages.Clustering), fmt.Sprintf("%.2f", r.Stages.Ranking),
				fmt.Sprintf("%.2f", r.Stages.Extraction), fmt.Sprintf("%.2f", r.F)})
		}
		printAligned(rows)
		fmt.Fprintln(w)
	}
	if run("endtoend") {
		any = true
		fmt.Fprintln(w, "Exp-3(II) — end-to-end gSQL evaluation")
		expr.RenderEndToEnd(w, expr.EndToEnd(o))
		if samples, err := expr.ExplainSamples(o); err == nil {
			fmt.Fprintln(w, "sample annotated plans (per-operator rows out and wall time):")
			fmt.Fprintln(w, samples)
		} else {
			fmt.Fprintln(w, "explain samples:", err)
		}
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func printAligned(rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		line := ""
		for i, c := range row {
			if i > 0 {
				line += "  "
			}
			line += c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Println(strings.TrimRight(line, " "))
		if ri == 0 {
			n := 0
			for _, w := range widths {
				n += w + 2
			}
			fmt.Println(strings.Repeat("-", n-2))
		}
	}
}
