// Command rextprofile runs the offline preprocessing pipeline of §IV-A
// for one collection and reports costs and sizes: model training,
// materialisation of f(D,G) and h(D,G), graph profiling into gτ(G), and
// the discovered extraction scheme (pattern clusters with their ranking
// diagnostics) — the "profile graph G and extract a collection DG of
// relations beforehand" step the efficient implementation relies on.
//
// Usage:
//
//	rextprofile -collection Paper -entities 100 -verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/expr"
)

func main() {
	collection := flag.String("collection", "Paper", "collection to profile")
	entities := flag.Int("entities", 80, "entities to generate")
	seed := flag.Uint64("seed", 7, "random seed")
	verbose := flag.Bool("verbose", false, "dump cluster diagnostics")
	flag.Parse()

	r, err := expr.Prepare(*collection, *entities, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	c := r.C
	st := c.Stats()
	gs := c.G.ComputeStats()
	fmt.Printf("%s: %d tuples, %d vertices, %d edges, %d types, %d components, degree avg %.1f / max %d\n",
		st.Name, st.Tuples, st.Vertices, st.Edges, gs.Types, gs.Components, gs.AvgDegree, gs.MaxDegree)

	start := time.Now()
	models := r.Models(expr.VRExt)
	fmt.Printf("model training (LSTM + GloVe): %.1fs\n", time.Since(start).Seconds())

	drop := c.Recoverable[c.MainRel]
	reduced, _ := c.Drop(c.MainRel, drop)
	matcher := c.Oracle(c.MainRel)
	cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: *seed}

	start = time.Now()
	ex := core.NewExtractor(c.G, models, cfg)
	dg, err := ex.Run(reduced, matcher.Match(reduced, c.G))
	if err != nil {
		fmt.Fprintln(os.Stderr, "extraction:", err)
		os.Exit(1)
	}
	fmt.Printf("RExt (discovery + Algorithm 1): %.2fs — %s, %d rows\n",
		time.Since(start).Seconds(), dg.Schema, dg.Len())
	nulls := 0
	for _, t := range dg.Tuples {
		for _, v := range t[1:] {
			if v.IsNull() {
				nulls++
			}
		}
	}
	fmt.Printf("null rate: %.1f%% of %d cells\n",
		100*float64(nulls)/float64(dg.Len()*(len(dg.Schema.Attrs)-1)), dg.Len()*(len(dg.Schema.Attrs)-1))

	start = time.Now()
	profiles := core.ProfileGraph(c.G, models, c.TypeKeywords, 2, core.Config{H: 30, Seed: *seed})
	fmt.Printf("graph profiling (gτ for %d types): %.2fs\n", len(profiles), time.Since(start).Seconds())
	var types []string
	for t := range profiles {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		te := profiles[t]
		fmt.Printf("  g_%s%v: %d rows\n", t, te.Scheme.Attrs(), te.Relation.Len())
	}

	if *verbose {
		fmt.Println("\ncluster diagnostics (score = t1 - t2 + t3 - penalty):")
		for _, ci := range ex.ClusterDiagnostics() {
			fmt.Printf("  score=%+.3f t=(%.2f,%.2f,%.2f) kw=%-14q |W|=%-4d patterns=%v\n",
				ci.Score, ci.Term1, ci.Term2, ci.Term3, ci.Keyword, ci.Size, ci.Patterns)
		}
	}
}
