package semjoin

// Benchmarks, one per table and figure of the paper's evaluation (§V).
// They run at a reduced scale so `go test -bench=. -benchmem` terminates
// on a laptop; cmd/experiments regenerates the full paper-style outputs.
// Quality benchmarks attach the measured F-measure via b.ReportMetric
// (unit "F"), so shapes are visible straight from the bench output.

import (
	"fmt"
	"sync"
	"testing"

	"semjoin/internal/core"
	"semjoin/internal/dataset"
	"semjoin/internal/expr"
	"semjoin/internal/gsql"
	"semjoin/internal/nn"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

const (
	benchEntities = 40
	benchSeed     = 7
)

var (
	benchMu   sync.Mutex
	benchRuns = map[string]*expr.Run{}
	benchEnvs = map[string]*expr.QueryEnv{}
)

func benchRun(b *testing.B, coll string) *expr.Run {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if r, ok := benchRuns[coll]; ok {
		return r
	}
	r, err := expr.Prepare(coll, benchEntities, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	r.Models(expr.VRExt) // train outside the timed region
	benchRuns[coll] = r
	return r
}

func benchEnv(b *testing.B, coll string) *expr.QueryEnv {
	b.Helper()
	r := benchRun(b, coll)
	benchMu.Lock()
	defer benchMu.Unlock()
	if e, ok := benchEnvs[coll]; ok {
		return e
	}
	env, err := expr.NewQueryEnv(r)
	if err != nil {
		b.Fatal(err)
	}
	benchEnvs[coll] = env
	return env
}

// BenchmarkDatasetGen regenerates every Table II collection.
func BenchmarkDatasetGen(b *testing.B) {
	for _, g := range dataset.Generators() {
		b.Run(g.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := g.Gen(dataset.Config{Entities: benchEntities, Seed: benchSeed})
				if c.Stats().Edges == 0 {
					b.Fatal("degenerate collection")
				}
			}
		})
	}
}

// BenchmarkRExtQualityVaryH is Fig 5(a): extraction quality while varying
// the cluster count H on the Paper collection.
func BenchmarkRExtQualityVaryH(b *testing.B) {
	r := benchRun(b, "Paper")
	for _, h := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("H=%d", h), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{H: h})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkRExtQualityVaryM is Fig 5(b): vary the attribute count m
// (Movie).
func BenchmarkRExtQualityVaryM(b *testing.B) {
	r := benchRun(b, "Movie")
	attrs := r.C.Recoverable[r.C.MainRel]
	for m := 1; m <= len(attrs); m++ {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{H: 30, DropAttrs: attrs[:m]})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkRExtVaryK is Fig 5(c)+(e): quality and time while varying the
// path bound k (MovKB).
func BenchmarkRExtVaryK(b *testing.B) {
	r := benchRun(b, "MovKB")
	for _, k := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{K: k, H: 30})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkRExtVaryH is Fig 5(d): extraction wall time while varying H
// (Paper) — the timing twin of BenchmarkRExtQualityVaryH.
func BenchmarkRExtVaryH(b *testing.B) {
	r := benchRun(b, "Paper")
	for _, h := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("H=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				expr.Recovery(r, expr.RecoveryOptions{H: h})
			}
		})
	}
}

// BenchmarkRExtVariants compares the six method variants at the default
// configuration (the legend of Figs 5(a)-(e)).
func BenchmarkRExtVariants(b *testing.B) {
	r := benchRun(b, "Paper")
	for _, v := range expr.Variants() {
		b.Run(string(v), func(b *testing.B) {
			r.Models(v) // train outside the timed region
			b.ResetTimer()
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{H: 30, Variant: v})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkClusteringNoise is Fig 5(f): robustness to injected KMC label
// noise.
func BenchmarkClusteringNoise(b *testing.B) {
	r := benchRun(b, "Drugs")
	for _, pct := range []int{0, 10, 20, 30} {
		b.Run(fmt.Sprintf("noise=%d%%", pct), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{H: 30, NoiseFrac: float64(pct) / 100})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkHERNoise is Fig 5(g): cascading HER error η.
func BenchmarkHERNoise(b *testing.B) {
	r := benchRun(b, "Celebrity")
	for _, pct := range []int{0, 10, 25} {
		b.Run(fmt.Sprintf("eta=%d%%", pct), func(b *testing.B) {
			var f float64
			for i := 0; i < b.N; i++ {
				res := expr.Recovery(r, expr.RecoveryOptions{H: 30, HERNoise: float64(pct) / 100})
				f = res.Mean.F1
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkIncExtVaryDelta is Fig 5(h)/Exp-4: one full ΔG sweep per
// iteration, reporting IncExt milliseconds at 5%/25%/45% plus the
// from-scratch RExt time alongside.
func BenchmarkIncExtVaryDelta(b *testing.B) {
	var rows []expr.IncRow
	for i := 0; i < b.N; i++ {
		rows = expr.Fig5h(expr.Options{
			Entities: benchEntities, Seed: benchSeed, Collections: []string{"Drugs"},
		})
	}
	for _, row := range rows {
		switch row.DeltaPct {
		case 5, 25, 45:
			b.ReportMetric(row.IncSeconds*1000, fmt.Sprintf("inc%d_ms", row.DeltaPct))
			if row.DeltaPct == 5 {
				b.ReportMetric(row.ExtSeconds*1000, "rext_ms")
			}
		}
	}
}

// BenchmarkHeuristicJoinAccuracy is Table III: heuristic joins forced on
// the workload, scored against exact answers.
func BenchmarkHeuristicJoinAccuracy(b *testing.B) {
	var rows []expr.TableIIIRow
	for i := 0; i < b.N; i++ {
		rows = expr.TableIII(expr.Options{
			Entities: benchEntities, Seed: benchSeed, Collections: []string{"Movie"},
		})
	}
	for _, r := range rows {
		if r.Group == "all" {
			b.ReportMetric(r.F, "F")
		}
	}
}

// BenchmarkEndToEndOptimized / Baseline / Heuristic are Exp-3(II): one
// representative enrichment query per mode over the Drugs environment.
func BenchmarkEndToEndOptimized(b *testing.B) { benchQueryMode(b, gsql.ModeAuto) }

// BenchmarkEndToEndBaseline times the conceptual-level baseline.
func BenchmarkEndToEndBaseline(b *testing.B) { benchQueryMode(b, gsql.ModeBaseline) }

// BenchmarkEndToEndHeuristic times the heuristic implementation.
func BenchmarkEndToEndHeuristic(b *testing.B) { benchQueryMode(b, gsql.ModeHeuristic) }

func benchQueryMode(b *testing.B, mode gsql.Mode) {
	env := benchEnv(b, "Drugs")
	const q = `
		select cas, name, disease from drug e-join G <disease> as T
		where not T.disease = 'Influenza'`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Engine(mode).Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkJoinGL contrasts cold vs warm gL connectivity cache
// (Exp-3(II)(4)).
func BenchmarkLinkJoinGL(b *testing.B) {
	env := benchEnv(b, "Drugs")
	const q = `
		select drug.cas, drug2.cas from drug l-join <G> drug as drug2
		where drug.cas = 'CAS-0000'`
	b.Run("warm", func(b *testing.B) {
		eng := env.Engine(gsql.ModeAuto)
		if _, err := eng.Query(q); err != nil { // populate gL
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineVsMaterialize contrasts the eager (materialise every
// intermediate) and pipelined (Volcano iterator) executions of the
// static enrichment join's three-way reduction S ⋈ f(D,G) ⋈ h(D,G): the
// pipelined plan allocates no intermediate relations between operators.
func BenchmarkPipelineVsMaterialize(b *testing.B) {
	env := benchEnv(b, "Drugs")
	base := env.Cat.Mat.Base("drug")
	if base == nil {
		b.Fatal("no drug materialisation")
	}
	s := env.Cat.Relations["drug"]
	kw := base.AR()
	cols := append(append([]string(nil), s.Schema.AttrNames()...), "vid")
	cols = append(cols, kw...)

	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sm, err := rel.NaturalJoin(s, base.MatchRel)
			if err != nil {
				b.Fatal(err)
			}
			j, err := rel.NaturalJoin(sm, base.Extracted)
			if err != nil {
				b.Fatal(err)
			}
			out, err := rel.Project(j, cols...)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() == 0 {
				b.Fatal("empty join")
			}
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it, err := env.Cat.Mat.StaticEnrichIter("drug", rel.NewScan(s), kw)
			if err != nil {
				b.Fatal(err)
			}
			out, err := rel.Materialize(nil, it)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() == 0 {
				b.Fatal("empty join")
			}
		}
	})
}

// BenchmarkTracingOverhead measures what the tracing subsystem adds to
// the end-to-end engine query path at the sample rates of interest:
// 0 (spans built, nothing retained), 0.01 (production sampling) and
// 1.0 (keep everything — the default). The workload is the enrichment
// join family of BenchmarkPipelineVsMaterialize driven through the
// engine, so trace creation, span recording, operator grafting, the
// keep coin-flip and ring-buffer retention are all on the measured
// path. Sampling is decided at Finish, so the rates should differ only
// by the retention cost — the acceptance bar is <3% between 0 and 0.01.
func BenchmarkTracingOverhead(b *testing.B) {
	env := benchEnv(b, "Drugs")
	const q = `
		select cas, name, disease from drug e-join G <disease> as T
		where not T.disease = 'Influenza'`
	for _, cfg := range []struct {
		name string
		rate float64
	}{
		{"rate0", 0},
		{"rate1pct", 0.01},
		{"rate100", 1.0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := env.Engine(gsql.ModeAuto)
			eng.Tracer = obs.NewTracer(cfg.rate, 0)
			eng.Traces = obs.NewTraceStore(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLSTMTrain is Exp-3(I)(a): language-model training on one
// collection's random-walk corpus.
func BenchmarkLSTMTrain(b *testing.B) {
	r := benchRun(b, "Drugs")
	corpus := core.BuildCorpus(r.C.G, 3, 8, benchSeed)
	vocab := nn.BuildVocab(corpus, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nn.NewLSTM(vocab, nn.LSTMConfig{Seed: benchSeed})
		m.Train(corpus, 2)
	}
}

// BenchmarkPrecompute is Exp-3(I)(b): offline materialisation for static
// joins.
func BenchmarkPrecompute(b *testing.B) {
	r := benchRun(b, "Drugs")
	c := r.C
	reduced, _ := c.Drop(c.MainRel, c.Recoverable[c.MainRel])
	models := r.Models(expr.VRExt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.BuildMaterialized(c.G, models, map[string]core.BaseSpec{
			c.MainRel: {D: reduced, AR: c.Recoverable[c.MainRel], Matcher: c.Oracle(c.MainRel)},
		}, core.Config{H: 30, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md "design choices") ---

func ablationRecovery(b *testing.B, mutate func(*core.Config)) float64 {
	b.Helper()
	r := benchRun(b, "Movie")
	r.Models(expr.VRExt) // train outside the timed region
	b.ResetTimer()
	c := r.C
	drop := c.Recoverable[c.MainRel]
	reduced, truth := c.Drop(c.MainRel, drop)
	cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: benchSeed}
	mutate(&cfg)
	var f float64
	for i := 0; i < b.N; i++ {
		out, err := core.EnrichmentJoin(reduced, c.G, r.Models(expr.VRExt), c.Oracle(c.MainRel), drop, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ps []expr.PRF
		for _, attr := range drop {
			ps = append(ps, expr.ValueRecovery(out, c.Main().Schema.Key, attr, truth[attr]))
		}
		f = expr.Mean(ps).F1
	}
	return f
}

// BenchmarkAblationBeam contrasts the paper's greedy selection (Beam=1)
// with the default beam (ablation 1).
func BenchmarkAblationBeam(b *testing.B) {
	for _, beam := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("beam=%d", beam), func(b *testing.B) {
			f := ablationRecovery(b, func(c *core.Config) { c.Beam = beam })
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkAblationRefinement toggles majority-vote pattern refinement
// (ablation 3).
func BenchmarkAblationRefinement(b *testing.B) {
	for _, off := range []bool{false, true} {
		name := "on"
		if off {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			f := ablationRecovery(b, func(c *core.Config) { c.NoRefinement = off })
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkAblationRankingTerms disables each ranking term in turn
// (ablation 4).
func BenchmarkAblationRankingTerms(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full", func(*core.Config) {}},
		{"noTerm1", func(c *core.Config) { c.DisableTerm1 = true }},
		{"noTerm2", func(c *core.Config) { c.DisableTerm2 = true }},
		{"noTerm3", func(c *core.Config) { c.DisableTerm3 = true }},
		{"noLengthPenalty", func(c *core.Config) { c.LengthPenalty = -1 }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			f := ablationRecovery(b, tc.mutate)
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkAblationBounce toggles the sibling-bounce filter (ablation 7).
func BenchmarkAblationBounce(b *testing.B) {
	for _, allow := range []bool{false, true} {
		name := "filtered"
		if allow {
			name = "allowed"
		}
		b.Run(name, func(b *testing.B) {
			f := ablationRecovery(b, func(c *core.Config) { c.AllowBounce = allow })
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkAblationPathCache contrasts Algorithm 1 with and without the
// discovery-time path cache (ablation 6).
func BenchmarkAblationPathCache(b *testing.B) {
	r := benchRun(b, "Movie")
	c := r.C
	drop := c.Recoverable[c.MainRel]
	reduced, _ := c.Drop(c.MainRel, drop)
	cfg := core.Config{H: 30, Keywords: drop, MaxAttrs: len(drop), Seed: benchSeed}
	matches := c.Oracle(c.MainRel).Match(reduced, c.G)
	ex := core.NewExtractor(c.G, r.Models(expr.VRExt), cfg)
	if err := ex.Discover(reduced, matches); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.Extract(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex.ClearPathCache()
			if _, err := ex.Extract(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
